package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file implements the order-escape analysis behind the maprange rule.
// PR 1's rule was syntactic: every `for … range` over a builtin map was a
// finding. That conflates two very different loops — a reduction like
// `for _, v := range m { total += v }` is order-independent and harmless,
// while `for k := range m { emit(k) }` leaks Go's randomized iteration
// order straight into output. The analysis here taints the loop's
// key/value variables, propagates the taint forward through assignments
// with a small dataflow walk, and reports the range statement only when a
// tainted value can actually escape into order-sensitive state:
//
//   - returned from the function, stored to package-level state, stored
//     through a pointer parameter/receiver, or sent on a channel;
//   - passed to a sink (fmt printing, log, io/bufio/os writes, the
//     module's stats/trace/bus/sim packages, builtin print/println);
//   - used as an argument in an order-dependent sequence of effectful
//     calls (a call in statement position whose callee is not known
//     pure).
//
// Downgraded to clean:
//
//   - commutative integer reductions (`+= -= *= |= &= ^=`, ++/--);
//   - building another keyed structure (`out[k] = v` — except genuine
//     accumulation `m2[k] = append(m2[k], …)`, which reorders the slice);
//   - values laundered through sort.* / slices.Sort* before escaping;
//   - calls in expression position with tainted arguments whose results
//     never escape (covered transitively by tracking the results).
//
// The analysis is intraprocedural; closures are analyzed as independent
// function bodies. That is sound for the discipline the module enforces
// because every cross-function order transfer happens through returned or
// stored values, which are escapes at the source loop.

// taintState maps an object to the bitmask of map-range origins whose
// iteration order it may carry.
type taintState map[types.Object]uint64

// maxEscapeOrigins bounds the per-function origin bitmask.
const maxEscapeOrigins = 64

func analyzerMapRange() *Analyzer {
	return &Analyzer{
		Name: "maprange",
		Doc:  "map iteration whose order can escape into simulator state or output",
		Run: func(pkgs []*Package, r *Reporter) {
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					for _, decl := range f.Decls {
						fd, ok := decl.(*ast.FuncDecl)
						if !ok || fd.Body == nil {
							continue
						}
						for _, re := range scanOrderEscapes(pkg, fd.Body, fd) {
							if re.desc == "" {
								continue
							}
							r.Report(pkg, re.rs.For, "maprange",
								"map iteration order %s; range det.SortedKeys(m) instead, or waive with //bulklint:ordered <why>",
								re.desc)
						}
					}
				}
			}
		},
	}
}

// rangeEscape is one builtin-map range found in a function body (closures
// included), with the first escape description — "" when the iteration
// order stays confined to the function.
type rangeEscape struct {
	rs   *ast.RangeStmt
	desc string
}

// scanOrderEscapes analyzes one function body and every closure literal it
// contains as independent frames, returning every map-range origin with
// its escape verdict. Both the maprange rule and the effect engine (which
// treats an escaping iteration order as a nondeterminism source) consume
// the result.
func scanOrderEscapes(pkg *Package, body *ast.BlockStmt, fd *ast.FuncDecl) []rangeEscape {
	e := &escapeScan{pkg: pkg, boundary: map[types.Object]bool{}, results: map[types.Object]bool{}}
	if fd != nil {
		e.collectBoundary(fd.Recv, false)
		e.collectBoundary(fd.Type.Params, false)
		e.collectBoundary(fd.Type.Results, true)
	}
	st := taintState{}
	flowWalk(st, body.List, flowHooks[taintState]{
		fork:  forkTaint,
		merge: mergeTaint,
		stmt:  e.stmt,
		pre:   e.pre,
	})
	out := e.collect(nil)

	// Closures get their own scan: their map ranges are analyzed in the
	// closure's own frame, with the closure's parameters as the boundary.
	// Inspect reaches every nesting depth, and each scan only walks its own
	// body's statements, so each literal is analyzed exactly once.
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		sub := &escapeScan{pkg: pkg, boundary: map[types.Object]bool{}, results: map[types.Object]bool{}}
		sub.collectBoundary(fl.Type.Params, false)
		sub.collectBoundary(fl.Type.Results, true)
		st := taintState{}
		flowWalk(st, fl.Body.List, flowHooks[taintState]{
			fork:  forkTaint,
			merge: mergeTaint,
			stmt:  sub.stmt,
			pre:   sub.pre,
		})
		out = sub.collect(out)
		return true
	})
	return out
}

// escapeScan holds the per-body analysis context.
type escapeScan struct {
	pkg *Package
	// boundary is the set of parameter/receiver/named-result objects:
	// stores through them (and returns) are caller-visible.
	boundary map[types.Object]bool
	// results is the subset of boundary that are named results (a naked
	// return escapes their taint).
	results map[types.Object]bool
	loops   []*ast.RangeStmt // map-range origins, in encounter order
	escapes []string         // first escape description per origin ("" = clean)
}

func (e *escapeScan) collectBoundary(fields *ast.FieldList, isResult bool) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		for _, name := range field.Names {
			if obj := e.pkg.Info.Defs[name]; obj != nil {
				e.boundary[obj] = true
				if isResult {
					e.results[obj] = true
				}
			}
		}
	}
}

// collect appends every origin of this frame with its verdict.
func (e *escapeScan) collect(out []rangeEscape) []rangeEscape {
	for i, rs := range e.loops {
		out = append(out, rangeEscape{rs: rs, desc: e.escapes[i]})
	}
	return out
}

func forkTaint(st taintState) taintState {
	out := make(taintState, len(st))
	for obj, o := range st {
		out[obj] = o
	}
	return out
}

// mergeTaint is the may-join: a value is order-tainted after a branch if
// it is tainted on any path.
func mergeTaint(base taintState, branches []taintState, mayFallThrough bool) taintState {
	out := taintState{}
	if mayFallThrough {
		for obj, o := range base {
			out[obj] |= o
		}
	}
	for _, br := range branches {
		for obj, o := range br {
			out[obj] |= o
		}
	}
	return out
}

// pre seeds taint at range statements before their bodies are walked.
func (e *escapeScan) pre(st taintState, s ast.Stmt) {
	rs, ok := s.(*ast.RangeStmt)
	if !ok {
		return
	}
	tv, ok := e.pkg.Info.Types[rs.X]
	if ok && tv.Type != nil && coreMapType(tv.Type) != nil {
		if len(e.loops) >= maxEscapeOrigins {
			return
		}
		bit := uint64(1) << len(e.loops)
		e.loops = append(e.loops, rs)
		e.escapes = append(e.escapes, "")
		e.seedVar(st, rs.Key, bit, rs)
		e.seedVar(st, rs.Value, bit, rs)
		return
	}
	// Ranging over an order-tainted sequence propagates its origins to the
	// iteration variables.
	if o := e.exprOrigins(st, rs.X); o != 0 {
		e.seedVar(st, rs.Key, o, rs)
		e.seedVar(st, rs.Value, o, rs)
	}
}

func (e *escapeScan) seedVar(st taintState, lv ast.Expr, origins uint64, rs *ast.RangeStmt) {
	if lv == nil {
		return
	}
	lv = unparen(lv)
	if id, ok := lv.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := e.pkg.Info.Defs[id]
		if obj == nil {
			obj = e.pkg.Info.Uses[id]
		}
		if obj != nil {
			st[obj] |= origins
			return
		}
		return
	}
	// Iteration variable is not a plain identifier (m[k], s.f, …): the
	// order lands directly in other state.
	e.escape(origins, "is stored via a non-local iteration variable", rs.Pos())
}

// escape records the first escape for every origin in the mask.
func (e *escapeScan) escape(origins uint64, what string, pos token.Pos) {
	if origins == 0 {
		return
	}
	line := sharedFset.Position(pos).Line
	for i := range e.loops {
		if origins&(1<<i) != 0 && e.escapes[i] == "" {
			e.escapes[i] = what + lineSuffix(line)
		}
	}
}

func lineSuffix(line int) string {
	return " (line " + strconv.Itoa(line) + ")"
}

// stmt is the transfer function for simple statements.
func (e *escapeScan) stmt(st taintState, s ast.Stmt) {
	e.scanCalls(st, s)
	switch n := s.(type) {
	case *ast.AssignStmt:
		e.assign(st, n)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var o uint64
				if i < len(vs.Values) {
					o = e.exprOrigins(st, vs.Values[i])
				} else if len(vs.Values) == 1 {
					o = e.exprOrigins(st, vs.Values[0])
				}
				e.setIdentTaint(st, name, o)
			}
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			e.escape(e.exprOrigins(st, res), "escapes via return", n.Pos())
		}
		if len(n.Results) == 0 {
			// Naked return: named results carry their current taint out.
			var o uint64
			for obj := range e.results {
				o |= st[obj]
			}
			e.escape(o, "escapes via return", n.Pos())
		}
	case *ast.SendStmt:
		e.escape(e.exprOrigins(st, n.Value), "is sent on a channel", n.Pos())
	case *ast.ExprStmt:
		if call, ok := unparen(n.X).(*ast.CallExpr); ok {
			e.effectCall(st, call)
		}
	case *ast.DeferStmt:
		e.effectCall(st, n.Call)
	case *ast.GoStmt:
		e.effectCall(st, n.Call)
	}
}

// assign handles = := and the compound assignment operators.
func (e *escapeScan) assign(st taintState, n *ast.AssignStmt) {
	if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			// x, ok := m[k] — every lvalue gets the rhs origins.
			o := e.exprOrigins(st, n.Rhs[0])
			for _, l := range n.Lhs {
				e.assignOne(st, l, o, n.Rhs)
			}
			return
		}
		for i, l := range n.Lhs {
			if i < len(n.Rhs) {
				e.assignOne(st, l, e.exprOrigins(st, n.Rhs[i]), n.Rhs)
			}
		}
		return
	}
	if n.Tok == token.INC || n.Tok == token.DEC {
		return
	}
	// Compound assignment. Commutative integer reductions are
	// order-independent: the final value does not depend on iteration
	// order. Everything else (string +=, float accumulation, shifts)
	// keeps the taint.
	for i, l := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		o := e.exprOrigins(st, n.Rhs[i])
		if o == 0 {
			continue
		}
		if commutativeReduction(n.Tok) && e.isIntegerExpr(l) {
			continue
		}
		l = unparen(l)
		if id, ok := l.(*ast.Ident); ok {
			obj := identObj(e.pkg, id)
			if obj != nil && !e.boundary[obj] && !isPkgLevel(obj) {
				st[obj] |= o
				continue
			}
		}
		e.assignOne(st, l, o, n.Rhs)
	}
}

func commutativeReduction(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

func (e *escapeScan) isIntegerExpr(x ast.Expr) bool {
	tv, ok := e.pkg.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// assignOne transfers origins o into the lvalue l.
func (e *escapeScan) assignOne(st taintState, l ast.Expr, o uint64, rhs []ast.Expr) {
	l = unparen(l)
	switch lv := l.(type) {
	case *ast.Ident:
		if lv.Name == "_" {
			return
		}
		e.setIdentTaint(st, lv, o)
	case *ast.IndexExpr:
		baseTV, ok := e.pkg.Info.Types[lv.X]
		if ok && baseTV.Type != nil && coreMapType(baseTV.Type) != nil {
			// Storing under a tainted key into another builtin map builds a
			// keyed structure — order-independent — unless the rhs reads the
			// map being written (accumulation: m2[k] = append(m2[k], v)
			// reorders the accumulated slice).
			root, _ := rootIdent(e.pkg, lv.X)
			if root != nil && o != 0 && anyExprReadsObj(e.pkg, rhs, root) {
				e.taintRoot(st, root, o, lv.Pos())
			}
			return
		}
		e.lvaluePath(st, l, o)
	default:
		e.lvaluePath(st, l, o)
	}
}

// setIdentTaint is a strong update: assigning an untainted value clears
// the variable (laundering by reassignment). Stores to package-level vars
// escape; parameter and named-result rebinding stays local (named-result
// taint is collected at return statements).
func (e *escapeScan) setIdentTaint(st taintState, id *ast.Ident, o uint64) {
	obj := identObj(e.pkg, id)
	if obj == nil {
		return
	}
	if isPkgLevel(obj) {
		e.escape(o, "is stored to package-level state", id.Pos())
		return
	}
	if o == 0 {
		delete(st, obj)
	} else {
		st[obj] = o
	}
}

// lvaluePath handles stores through selector/index/deref chains.
func (e *escapeScan) lvaluePath(st taintState, l ast.Expr, o uint64) {
	if o == 0 {
		return
	}
	root, viaShared := rootIdent(e.pkg, l)
	if root == nil {
		return
	}
	switch {
	case isPkgLevel(root):
		e.escape(o, "is stored to package-level state", l.Pos())
	case e.boundary[root]:
		// A store through a parameter or receiver escapes when it can reach
		// the caller's data: any path through an index/deref, or any path
		// rooted at a pointer-typed parameter/receiver.
		if viaShared || isPointerish(root.Type()) {
			e.escape(o, "is stored through a parameter or receiver", l.Pos())
		}
		// Plain field store on a value parameter mutates the local copy.
	default:
		// Store into a local composite: the local now carries the order.
		e.taintRoot(st, root, o, l.Pos())
	}
}

func (e *escapeScan) taintRoot(st taintState, root types.Object, o uint64, pos token.Pos) {
	if isPkgLevel(root) {
		e.escape(o, "is stored to package-level state", pos)
		return
	}
	if e.boundary[root] && isPointerish(root.Type()) {
		e.escape(o, "is stored through a parameter or receiver", pos)
		return
	}
	st[root] |= o
}

// exprOrigins returns the union of origins of every tainted object the
// expression reads. Closure literals are skipped: their bodies execute in
// their own frame and are analyzed separately.
func (e *escapeScan) exprOrigins(st taintState, x ast.Expr) uint64 {
	if x == nil {
		return 0
	}
	var o uint64
	ast.Inspect(x, func(n ast.Node) bool {
		switch id := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := identObj(e.pkg, id); obj != nil {
				o |= st[obj]
			}
		}
		return true
	})
	return o
}

// scanCalls handles sinks and sort-laundering in every expression position
// of the statement.
func (e *escapeScan) scanCalls(st taintState, s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSortCall(e.pkg, call) && len(call.Args) > 0 {
			// Sorting launders iteration order: the result is key order.
			if root, _ := rootIdent(e.pkg, call.Args[0]); root != nil {
				delete(st, root)
			}
			return true
		}
		if sinkName := sinkCallee(e.pkg, call); sinkName != "" {
			var o uint64
			for _, arg := range call.Args {
				o |= e.exprOrigins(st, arg)
			}
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				o |= e.exprOrigins(st, sel.X)
			}
			e.escape(o, "reaches "+sinkName, call.Pos())
		}
		return true
	})
}

// effectCall handles a call in statement position (including go/defer):
// the call runs for effect, so a tainted argument means the sequence of
// effects depends on iteration order.
func (e *escapeScan) effectCall(st taintState, call *ast.CallExpr) {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && isBuiltin(e.pkg, id) {
		switch id.Name {
		case "copy":
			if len(call.Args) == 2 {
				o := e.exprOrigins(st, call.Args[1])
				if root, _ := rootIdent(e.pkg, call.Args[0]); root != nil && o != 0 {
					e.taintRoot(st, root, o, call.Pos())
				}
			}
		case "print", "println":
			var o uint64
			for _, arg := range call.Args {
				o |= e.exprOrigins(st, arg)
			}
			e.escape(o, "reaches builtin print", call.Pos())
		}
		return
	}
	if tv, ok := e.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion in statement position: no effect
	}
	if isSortCall(e.pkg, call) {
		return // laundering, handled in scanCalls
	}
	if sinkCallee(e.pkg, call) != "" {
		return // already escaped in scanCalls
	}
	var o uint64
	for _, arg := range call.Args {
		o |= e.exprOrigins(st, arg)
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		o |= e.exprOrigins(st, sel.X)
	}
	if o == 0 {
		return
	}
	if calleePkgPure(e.pkg, call) {
		return // pure call in statement position has no observable effect
	}
	// A method call on a local object confines the effect to that object:
	// taint the receiver instead of escaping (dst.Add(k) builds a keyed
	// structure; the order matters only if dst later escapes).
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if root, _ := rootIdent(e.pkg, sel.X); root != nil {
			if _, isVar := root.(*types.Var); isVar && !isPkgLevel(root) &&
				!(e.boundary[root] && isPointerish(root.Type())) {
				st[root] |= o
				return
			}
		}
	}
	e.escape(o, "drives an order-dependent sequence of calls", call.Pos())
}

// identObj resolves an identifier to its object (use or def).
func identObj(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

// isPkgLevel reports whether obj is a package-level variable.
func isPkgLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isPointerish reports whether writes through a value of this type are
// visible to other holders of the value.
func isPointerish(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// coreMapType returns the builtin map type a value of type t ranges as, or
// nil. For a type parameter the core type of its constraint is consulted,
// so det.SortedKeys's `M ~map[K]V` loop is recognized.
func coreMapType(t types.Type) *types.Map {
	if m, ok := t.Underlying().(*types.Map); ok {
		return m
	}
	tp, ok := t.(*types.TypeParam)
	if !ok {
		return nil
	}
	iface, ok := tp.Constraint().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var core *types.Map
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		switch emb := iface.EmbeddedType(i).(type) {
		case *types.Union:
			for j := 0; j < emb.Len(); j++ {
				m, ok := emb.Term(j).Type().Underlying().(*types.Map)
				if !ok {
					return nil
				}
				if core == nil {
					core = m
				}
			}
		default:
			m, ok := emb.Underlying().(*types.Map)
			if !ok {
				return nil
			}
			if core == nil {
				core = m
			}
		}
	}
	return core
}

// anyExprReadsObj reports whether any of the expressions references obj.
func anyExprReadsObj(pkg *Package, exprs []ast.Expr, obj types.Object) bool {
	for _, x := range exprs {
		found := false
		ast.Inspect(x, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && identObj(pkg, id) == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall reports whether the call is one of the sanctioned sorting
// functions that launder iteration order into key order.
func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	path, name := calleePkgFunc(pkg, call)
	switch path {
	case "sort":
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

// sinkCallee returns a human-readable sink description if the call targets
// an order-sensitive sink package, else "".
func sinkCallee(pkg *Package, call *ast.CallExpr) string {
	path, name := calleePkgFunc(pkg, call)
	if path == "" {
		return ""
	}
	switch path {
	case "fmt":
		// The Sprint family is pure; the printing family writes output.
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return "fmt output"
		}
		return ""
	case "log", "io", "bufio", "os":
		return path + " output"
	}
	for _, suffix := range []string{"/internal/stats", "/internal/trace", "/internal/bus", "/internal/sim"} {
		if strings.HasSuffix(path, suffix) {
			return "simulator state (" + strings.TrimPrefix(suffix, "/") + ")"
		}
	}
	return ""
}

// calleePkgFunc returns the import path and name of the called package
// function or method, or "", "".
func calleePkgFunc(pkg *Package, call *ast.CallExpr) (string, string) {
	if fn := staticCallee(pkg, call); fn != nil && fn.Pkg() != nil {
		return fn.Pkg().Path(), fn.Name()
	}
	// Interface-method sinks (io.Writer.Write on a concrete type) resolve
	// statically above; dynamic calls are not treated as sinks.
	return "", ""
}

// calleePkgPure reports whether the callee belongs to a package whose
// functions are pure (no observable effect beyond their results).
func calleePkgPure(pkg *Package, call *ast.CallExpr) bool {
	path, _ := calleePkgFunc(pkg, call)
	switch path {
	case "strings", "strconv", "path", "math", "math/bits", "cmp", "slices",
		"unicode", "unicode/utf8", "sort":
		return true
	}
	return false
}

// countSyntacticMapRanges is the PR 1 rule: every range over a builtin map
// counts, escape or not. It exists so tests can demonstrate that the
// escape analysis is strictly more precise on the same tree.
func countSyntacticMapRanges(pkgs []*Package) int {
	n := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				rs, ok := node.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := pkg.Info.Types[rs.X]; ok && tv.Type != nil && coreMapType(tv.Type) != nil {
					n++
				}
				return true
			})
		}
	}
	return n
}
