package lint

import (
	"go/ast"
	"go/types"
)

// analyzerGuardedBy enforces `//bulklint:guardedby <mu>` field annotations:
// any function that reads or writes an annotated field must, somewhere in
// its body, acquire the named mutex (call <mu>.Lock or <mu>.RLock), or be
// waived as a whole with `//bulklint:locked <why>` when its caller holds
// the lock. This is an intraprocedural approximation — it checks that the
// lock is acquired in the same function, not that the access is inside the
// critical section — which is exactly the discipline the simulator's small
// commit-path types need.
func analyzerGuardedBy() *Analyzer {
	return &Analyzer{
		Name: "guardedby",
		Doc:  "guarded field accessed without acquiring its mutex",
		Run: func(pkgs []*Package, r *Reporter) {
			guarded := map[types.Object]string{}
			for _, pkg := range pkgs {
				collectGuarded(pkg, guarded)
			}
			if len(guarded) == 0 {
				return
			}
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					for _, decl := range f.Decls {
						fd, ok := decl.(*ast.FuncDecl)
						if !ok || fd.Body == nil {
							continue
						}
						checkGuardedAccesses(pkg, fd, guarded, r)
					}
				}
			}
		},
	}
}

// collectGuarded records every struct field carrying a guardedby directive
// on its own line or the line above (field doc comment).
func collectGuarded(pkg *Package, guarded map[types.Object]string) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					pos := sharedFset.Position(name.Pos())
					if mu, ok := guardDirectiveAt(pkg, pos.Filename, pos.Line); ok {
						guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
}

// guardDirectiveAt looks for a guardedby directive at line or line-1.
func guardDirectiveAt(pkg *Package, file string, line int) (string, bool) {
	byLine := pkg.directives[file]
	if byLine == nil {
		return "", false
	}
	for _, l := range []int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.name == "guardedby" && d.arg != "" {
				return d.arg, true
			}
		}
	}
	return "", false
}

// checkGuardedAccesses reports accesses to guarded fields in fd when fd
// neither acquires the guarding mutex nor carries a locked waiver.
func checkGuardedAccesses(pkg *Package, fd *ast.FuncDecl, guarded map[types.Object]string, r *Reporter) {
	// Mutexes this function acquires, by name (the last selector component
	// or bare identifier before .Lock/.RLock).
	acquired := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			acquired[x.Name] = true
		case *ast.SelectorExpr:
			acquired[x.Sel.Name] = true
		}
		return true
	})

	lockedWaiver := pkg.funcHasDirective(sharedFset, fd, "locked")

	ast.Inspect(fd, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pkg.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		mu, ok := guarded[s.Obj()]
		if !ok || acquired[mu] {
			return true
		}
		if lockedWaiver {
			return true
		}
		r.Report(pkg, sel.Sel.Pos(), "guardedby",
			"field %s is guarded by %s, but %s never acquires it; lock %s or annotate the function with //bulklint:locked <why>",
			s.Obj().Name(), mu, funcDisplayName(fd), mu)
		return true
	})
}

// funcDisplayName renders "Type.Method" or "Func" for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
