package lint

import (
	"go/ast"
	"go/types"
)

// This file implements the guardedby rule as a flow-sensitive,
// interprocedural lockset analysis. PR 1's version only asked "does this
// function call mu.Lock anywhere?" — it accepted an access before the
// Lock and rejected helpers whose callers hold the lock. The upgrade
// tracks the set of mutexes that must be held at each program point
// (fork at branches, intersect at joins, walk loop bodies twice) and, for
// functions that touch guarded fields without locking themselves, infers
// the lockset held at entry as the intersection of the locksets at every
// static call site — iterated to a fixpoint so helper-of-helper chains
// resolve. Mutexes are identified by their field/variable name (the last
// selector component before .Lock), matching the `//bulklint:guardedby
// <mu>` vocabulary.
//
// Approximations: `defer mu.Unlock()` is treated as "held to the end of
// the function"; closure bodies are skipped (a closure runs at an unknown
// point, so neither its locks nor its accesses are attributed to the
// enclosing frame); dynamic calls contribute no call-site lockset.

// lockState is the set of mutex names that must be held.
type lockState map[string]bool

func analyzerGuardedBy() *Analyzer {
	return &Analyzer{
		Name: "guardedby",
		Doc:  "guarded field accessed on a path where its mutex is not held",
		Run: func(pkgs []*Package, r *Reporter) {
			guarded := map[types.Object]string{}
			for _, pkg := range pkgs {
				collectGuarded(pkg, guarded)
			}
			if len(guarded) == 0 {
				return
			}
			cg := r.callGraph(pkgs)
			ls := &locksetPass{guarded: guarded, cg: cg, entry: map[*types.Func]lockState{}}

			// Fixpoint over entry locksets: each round walks every body with
			// the current entry assumption and records the lockset at every
			// static call site; a callee's entry set is the intersection over
			// its call sites. Entry sets only grow, so this terminates.
			for range [8]int{} {
				ls.sites = map[*types.Func][]lockState{}
				ls.walkAll(pkgs, nil)
				if !ls.updateEntries() {
					break
				}
			}
			ls.walkAll(pkgs, r)
		},
	}
}

// locksetPass carries the interprocedural state.
type locksetPass struct {
	guarded map[types.Object]string
	cg      *callGraph
	entry   map[*types.Func]lockState   // inferred held-at-entry per function
	sites   map[*types.Func][]lockState // locksets observed at call sites
}

// walkAll runs the flow walk over every declared body. With r == nil it
// only collects call-site locksets; with r != nil it reports violations.
func (ls *locksetPass) walkAll(pkgs []*Package, r *Reporter) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ls.walkFunc(pkg, fd, fn.Origin(), r)
			}
		}
	}
}

func (ls *locksetPass) walkFunc(pkg *Package, fd *ast.FuncDecl, fn *types.Func, r *Reporter) {
	st := lockState{}
	for mu := range ls.entry[fn] {
		st[mu] = true
	}
	w := &locksetWalker{ls: ls, pkg: pkg, fd: fd, r: r}
	flowWalk(st, fd.Body.List, flowHooks[lockState]{
		fork:  forkLocks,
		merge: mergeLocks,
		stmt:  w.stmt,
	})
}

type locksetWalker struct {
	ls  *locksetPass
	pkg *Package
	fd  *ast.FuncDecl
	r   *Reporter
}

func forkLocks(st lockState) lockState {
	out := make(lockState, len(st))
	for mu := range st {
		out[mu] = true
	}
	return out
}

// mergeLocks is the must-join: a mutex is held after a join only if it is
// held on every incoming path.
func mergeLocks(base lockState, branches []lockState, mayFallThrough bool) lockState {
	out := lockState{}
	paths := branches
	if mayFallThrough || len(branches) == 0 {
		paths = append(paths, base)
	}
	for mu := range paths[0] {
		held := true
		for _, p := range paths[1:] {
			if !p[mu] {
				held = false
				break
			}
		}
		if held {
			out[mu] = true
		}
	}
	return out
}

// stmt scans one simple statement, in source order, for lock operations,
// guarded-field accesses, and static call sites.
func (w *locksetWalker) stmt(st lockState, s ast.Stmt) {
	_, isDefer := s.(*ast.DeferStmt)
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs at an unknown time; not this frame
		case *ast.CallExpr:
			w.call(st, n, isDefer)
		case *ast.SelectorExpr:
			w.access(st, n)
		}
		return true
	})
}

func (w *locksetWalker) call(st lockState, call *ast.CallExpr, isDefer bool) {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if mu := mutexName(sel.X); mu != "" {
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if !isDefer {
					st[mu] = true
				}
				return
			case "Unlock", "RUnlock":
				// A deferred unlock releases at return: the mutex stays held
				// for the rest of the body.
				if !isDefer {
					delete(st, mu)
				}
				return
			}
		}
	}
	if callee := staticCallee(w.pkg, call); callee != nil {
		if _, declared := w.ls.cg.nodes[callee]; declared {
			w.ls.sites[callee] = append(w.ls.sites[callee], forkLocks(st))
		}
	}
}

func (w *locksetWalker) access(st lockState, sel *ast.SelectorExpr) {
	s, ok := w.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	mu, ok := w.ls.guarded[s.Obj()]
	if !ok || st[mu] {
		return
	}
	if w.r == nil {
		return // collection pass
	}
	if d := w.pkg.funcDirective(sharedFset, w.fd, "locked"); d != nil {
		d.used = true
		return
	}
	w.r.Report(w.pkg, sel.Sel.Pos(), "guardedby",
		"field %s is guarded by %s, which is not held here in %s (nor at entry by every caller); lock %s or annotate the function with //bulklint:locked <why>",
		s.Obj().Name(), mu, funcDisplayName(w.fd), mu)
}

// updateEntries recomputes every function's entry lockset from the call
// sites observed this round; reports whether anything changed.
func (ls *locksetPass) updateEntries() bool {
	changed := false
	for fn, sites := range ls.sites {
		var entry lockState
		for _, site := range sites {
			if entry == nil {
				entry = forkLocks(site)
				continue
			}
			for mu := range entry {
				if !site[mu] {
					delete(entry, mu)
				}
			}
		}
		if len(entry) == 0 {
			continue
		}
		cur := ls.entry[fn]
		grow := false
		for mu := range entry {
			if !cur[mu] {
				grow = true
				break
			}
		}
		if grow {
			ls.entry[fn] = entry
			changed = true
		}
	}
	return changed
}

// mutexName extracts the mutex's field/variable name from the receiver of
// a .Lock/.Unlock call: the bare identifier or last selector component.
func mutexName(x ast.Expr) string {
	switch x := unparen(x).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// collectGuarded records every struct field carrying a guardedby directive
// on its own line or the line above (field doc comment), marking the
// directive used: an annotation that attaches to a field is live even
// when every access is correctly locked.
func collectGuarded(pkg *Package, guarded map[types.Object]string) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					pos := sharedFset.Position(name.Pos())
					if d := guardDirectiveAt(pkg, pos.Filename, pos.Line); d != nil {
						guarded[obj] = d.arg
						d.used = true
					}
				}
			}
			return true
		})
	}
}

// guardDirectiveAt looks for a guardedby directive at line or line-1.
func guardDirectiveAt(pkg *Package, file string, line int) *directive {
	byLine := pkg.directives[file]
	if byLine == nil {
		return nil
	}
	for _, l := range []int{line, line - 1} {
		for _, d := range byLine[l] {
			if d.name == "guardedby" && d.arg != "" {
				return d
			}
		}
	}
	return nil
}
