package lint

import "testing"

func TestLayerDepUpwardImport(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/lint/layers.txt": `layer low
internal/a

layer high
internal/b
`,
		"internal/a/a.go": `package a

import "bulk/internal/b"

var X = b.Y
`,
		"internal/b/b.go": `package b

var Y = 1
`,
	})
	wantFinding(t, findings, "layerdep", "internal/a/a.go", 3)
}

func TestLayerDepSameLayerImport(t *testing.T) {
	// Same-layer imports are violations too: the contract is strictly-lower.
	findings := lintFixture(t, map[string]string{
		"internal/lint/layers.txt": `layer low
internal/a
internal/b
`,
		"internal/a/a.go": `package a

import "bulk/internal/b"

var X = b.Y
`,
		"internal/b/b.go": `package b

var Y = 1
`,
	})
	wantFinding(t, findings, "layerdep", "internal/a/a.go", 3)
}

func TestLayerDepCleanDAG(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/lint/layers.txt": `layer low
internal/b

layer high
internal/a
`,
		"internal/a/a.go": `package a

import "bulk/internal/b"

var X = b.Y
`,
		"internal/b/b.go": `package b

var Y = 1
`,
	})
	wantNoFinding(t, findings, "layerdep")
}

func TestLayerDepUnassignedPackage(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/lint/layers.txt": `layer low
internal/a
`,
		"internal/a/a.go": `package a

var X = 1
`,
		"internal/b/b.go": `package b

var Y = 1
`,
	})
	wantFinding(t, findings, "layerdep", "internal/b/b.go", 1)
}

func TestLayerDepSubtreeAndRootPatterns(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/lint/layers.txt": `layer low
internal/...

layer app
.
`,
		"root.go": `package bulk

import "bulk/internal/a/deep"

var X = deep.Y
`,
		"internal/a/deep/d.go": `package deep

var Y = 1
`,
	})
	wantNoFinding(t, findings, "layerdep")
}

func TestLayerDepWaiver(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/lint/layers.txt": `layer low
internal/a
internal/b
`,
		"internal/a/a.go": `package a

import "bulk/internal/b" //bulklint:allow layerdep transitional until the split lands

var X = b.Y
`,
		"internal/b/b.go": `package b

var Y = 1
`,
	})
	wantNoFinding(t, findings, "layerdep")
	wantNoFinding(t, findings, "stalewaiver")
}

func TestLayerDepParseErrors(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/lint/layers.txt": `internal/a
layer low
internal/a
layer low
`,
		"internal/a/a.go": `package a

var X = 1
`,
	})
	var got []string
	for _, f := range findings {
		if f.Rule == "layerdep" {
			got = append(got, f.Msg)
		}
	}
	if len(got) != 2 {
		t.Fatalf("want 2 layerdep parse errors, got %d: %v", len(got), got)
	}
	if got[0] != `entry "internal/a" appears before any layer declaration` {
		t.Errorf("first error = %q", got[0])
	}
	if got[1] != "duplicate layer low" {
		t.Errorf("second error = %q", got[1])
	}
}

func TestLayerDepInertWithoutLayersFile(t *testing.T) {
	// Fixtures (and modules) without a layers.txt declare no layering.
	findings := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "bulk/internal/b"

var X = b.Y
`,
		"internal/b/b.go": `package b

var Y = 1
`,
	})
	wantNoFinding(t, findings, "layerdep")
}
