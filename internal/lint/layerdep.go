package lint

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the layerdep rule: the package-layer DAG declared
// in internal/lint/layers.txt is enforced against the actual import graph,
// so the architecture (sig/flatmap/cache at the bottom, check/experiments
// at the top) is machine-checked instead of a comment. The contract is
// strict: an intra-module import must target a package in a strictly
// lower layer — same-layer imports are violations too, which is what
// keeps each layer internally flat and the planned protocol-core
// extraction honest.
//
// Layer file format, one declaration per line:
//
//	# comment
//	layer <name>        starts the next-higher layer (file order = layer
//	                    order, lowest first)
//	<dir>               assigns a module-relative package directory
//	<dir>/...           assigns a whole subtree
//	.                   assigns the module root package
//
// Every loaded package must be assigned to exactly one layer. A module
// without a layers.txt declares no layering and the rule is inert.
// Import findings are waived with `//bulklint:allow layerdep <why>` on the
// import line; problems in the layer file itself (parse errors, double
// assignment) are reported against the file and cannot be waived.

func analyzerLayerDep() *Analyzer {
	return &Analyzer{
		Name: "layerdep",
		Doc:  "intra-module import that violates the declared package-layer DAG",
		Run: func(pkgs []*Package, r *Reporter) {
			if len(pkgs) == 0 || pkgs[0].Mod == nil || pkgs[0].Mod.LayersSrc == "" {
				return
			}
			meta := pkgs[0].Mod
			layers, errs := parseLayers(meta.LayersSrc)
			if len(errs) > 0 {
				for _, e := range errs {
					r.reportAt(meta.LayersPath, e.line, 1, "layerdep", "%s", e.msg)
				}
				return
			}

			layerOf := map[string]int{} // package Dir -> layer index
			for _, pkg := range pkgs {
				idx := -1
				for i, l := range layers {
					if !l.matches(pkg.Dir) {
						continue
					}
					if idx >= 0 {
						r.reportAt(meta.LayersPath, 1, 1, "layerdep",
							"package %s is assigned to both layer %s and layer %s",
							displayDir(pkg.Dir), layers[idx].name, l.name)
						continue
					}
					idx = i
				}
				if idx < 0 {
					r.Report(pkg, pkg.Files[0].Package, "layerdep",
						"package %s is not assigned to any layer in %s",
						displayDir(pkg.Dir), layersFile)
					continue
				}
				layerOf[pkg.Dir] = idx
			}

			byPath := map[string]*Package{}
			for _, pkg := range pkgs {
				byPath[pkg.Path] = pkg
			}
			for _, pkg := range pkgs {
				li, ok := layerOf[pkg.Dir]
				if !ok {
					continue // unassigned: already reported
				}
				for _, f := range pkg.Files {
					for _, imp := range f.Imports {
						ip, err := strconv.Unquote(imp.Path.Value)
						if err != nil {
							continue
						}
						dep, ok := byPath[ip]
						if !ok {
							continue // standard library
						}
						di, ok := layerOf[dep.Dir]
						if !ok || di < li {
							continue
						}
						r.Report(pkg, imp.Pos(), "layerdep",
							"package %s (layer %s) imports %s (layer %s); imports must target a strictly lower layer of %s",
							displayDir(pkg.Dir), layers[li].name, ip, layers[di].name, layersFile)
					}
				}
			}
		},
	}
}

func displayDir(dir string) string {
	if dir == "" {
		return "."
	}
	return dir
}

// layerDecl is one declared layer, lowest first.
type layerDecl struct {
	name     string
	patterns []string
}

func (l layerDecl) matches(dir string) bool {
	for _, pat := range l.patterns {
		if pat == "." {
			if dir == "" {
				return true
			}
			continue
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if dir == rest || strings.HasPrefix(dir, rest+"/") {
				return true
			}
			continue
		}
		if dir == pat {
			return true
		}
	}
	return false
}

type layerErr struct {
	line int
	msg  string
}

// parseLayers parses the layer declaration; errors carry 1-based lines
// into the source file.
func parseLayers(src string) ([]layerDecl, []layerErr) {
	var layers []layerDecl
	var errs []layerErr
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, ok := strings.CutPrefix(line, "layer "); ok {
			name = strings.TrimSpace(name)
			if name == "" {
				errs = append(errs, layerErr{i + 1, "layer declaration is missing a name"})
				continue
			}
			for _, l := range layers {
				if l.name == name {
					errs = append(errs, layerErr{i + 1, fmt.Sprintf("duplicate layer %s", name)})
				}
			}
			layers = append(layers, layerDecl{name: name})
			continue
		}
		if len(layers) == 0 {
			errs = append(errs, layerErr{i + 1, fmt.Sprintf("entry %q appears before any layer declaration", line)})
			continue
		}
		layers[len(layers)-1].patterns = append(layers[len(layers)-1].patterns, line)
	}
	if len(layers) == 0 && len(errs) == 0 {
		errs = append(errs, layerErr{1, "layer file declares no layers"})
	}
	return layers, errs
}
