package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the atomicmix rule: a memory location accessed
// through the pointer-style sync/atomic API anywhere in the module must
// never be accessed by a plain load or store elsewhere. Mixed access is
// how torn reads and lost updates enter a codebase gradually — one
// hot-path atomic.AddUint64 added next to an existing plain counter read —
// and it is the specific precondition the planned parallel checker's
// sharded fingerprint set must be able to rely on.
//
// Pass 1 collects every object (struct field or variable) whose address is
// the first argument of a sync/atomic function call. Pass 2 reports every
// other access to those objects that is not itself the address argument of
// an atomic call. Typed atomics (atomic.Int64 and friends) encapsulate
// their word and need no rule; their method calls are skipped by
// construction. Waive a deliberately mixed site (an init path before the
// value is shared) with `//bulklint:allow atomicmix <why>`.

func analyzerAtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "location accessed both through sync/atomic and by plain load/store",
		Run: func(pkgs []*Package, r *Reporter) {
			atomicObjs := map[types.Object]token.Pos{} // object -> first atomic site
			atomicArgs := map[ast.Expr]bool{}          // the &x argument expressions
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						obj, arg := atomicTarget(pkg, call)
						if obj == nil {
							return true
						}
						atomicArgs[arg] = true
						if prev, seen := atomicObjs[obj]; !seen || call.Pos() < prev {
							atomicObjs[obj] = call.Pos()
						}
						return true
					})
				}
			}
			if len(atomicObjs) == 0 {
				return
			}
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						if e, ok := n.(ast.Expr); ok && atomicArgs[e] {
							return false // the atomic access itself
						}
						obj, pos := plainAccess(pkg, n)
						if obj == nil {
							return true
						}
						site, tracked := atomicObjs[obj]
						if !tracked {
							return true
						}
						at := sharedFset.Position(site)
						r.Report(pkg, pos, "atomicmix",
							"%s is accessed with sync/atomic at %s:%d but by plain load/store here; every access to an atomic location must go through sync/atomic (or waive with //bulklint:allow atomicmix <why>)",
							obj.Name(), at.Filename, at.Line)
						return true
					})
				}
			}
		},
	}
}

// atomicTarget resolves a call to the object whose address it atomically
// accesses: a pointer-style sync/atomic function whose first argument is
// &field or &var. Typed-atomic method calls return nil — the typed API
// cannot mix with plain access.
func atomicTarget(pkg *Package, call *ast.CallExpr) (types.Object, ast.Expr) {
	fn := staticCallee(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil, nil // atomic.Int64 & friends: encapsulated
	}
	if len(call.Args) == 0 {
		return nil, nil
	}
	ua, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || ua.Op != token.AND {
		return nil, nil
	}
	switch t := unparen(ua.X).(type) {
	case *ast.Ident:
		if obj := identObj(pkg, t); obj != nil {
			return obj, call.Args[0]
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[t]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj(), call.Args[0]
		}
		if obj := pkg.Info.Uses[t.Sel]; obj != nil {
			return obj, call.Args[0] // qualified package-level var
		}
	}
	return nil, nil
}

// plainAccess resolves an AST node to the variable object it reads or
// writes directly: a field selection, or a non-field identifier use.
// Declarations (Defs) are not accesses; field names inside selectors are
// reached via the SelectorExpr case, so the Ident case skips field
// objects to avoid double counting.
func plainAccess(pkg *Package, n ast.Node) (types.Object, token.Pos) {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		sel, ok := pkg.Info.Selections[n]
		if !ok || sel.Kind() != types.FieldVal {
			return nil, token.NoPos
		}
		return sel.Obj(), n.Sel.Pos()
	case *ast.Ident:
		v, ok := pkg.Info.Uses[n].(*types.Var)
		if !ok || v.IsField() {
			return nil, token.NoPos
		}
		return v, n.Pos()
	}
	return nil, token.NoPos
}
