package lint

import "testing"

// The waiver-audit tests exercise the stalewaiver rule: every //bulklint:
// directive must either suppress a live finding or attach to a real
// declaration; anything else is itself a finding.

func TestStaleOrderedWaiver(t *testing.T) {
	// The loop is provably local (a reduction), so the waiver suppresses
	// nothing and is reported stale.
	findings := escapeFixture(t, `package scratch

func Sum(m map[int]int) int {
	total := 0
	for _, v := range m { //bulklint:ordered harmless, but dead
		total += v
	}
	return total
}
`)
	wantNoFinding(t, findings, "maprange")
	wantFinding(t, findings, "stalewaiver", "internal/scratch/s.go", 5)
}

func TestUnknownDirectiveName(t *testing.T) {
	findings := escapeFixture(t, `package scratch

//bulklint:nosuchthing reviewed
func F() {}
`)
	wantFinding(t, findings, "stalewaiver", "internal/scratch/s.go", 3)
}

func TestUnknownAllowRule(t *testing.T) {
	findings := escapeFixture(t, `package scratch

func F() int {
	return 1 //bulklint:allow warpspeed not a rule
}
`)
	wantFinding(t, findings, "stalewaiver", "internal/scratch/s.go", 4)
}

func TestUsedWaiverNotStale(t *testing.T) {
	findings := escapeFixture(t, `package scratch

func Checked(n int) int {
	if n <= 0 {
		panic("not positive") //bulklint:invariant callers validate
	}
	return n
}
`)
	wantNoFinding(t, findings, "nakedpanic")
	wantNoFinding(t, findings, "stalewaiver")
}

func TestStaleGatedOnDisabledRule(t *testing.T) {
	// With maprange disabled the audit cannot know whether the waiver is
	// live, so it stays silent; with all rules on, it reports.
	files := map[string]string{
		"internal/scratch/s.go": `package scratch

func Sum(m map[int]int) int {
	total := 0
	for _, v := range m { //bulklint:ordered dead waiver
		total += v
	}
	return total
}
`,
	}
	pkgs, fset, err := LoadFixture("bulk", files)
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	findings := RunAnalyzers(pkgs, fset, map[string]bool{"maprange": true})
	wantNoFinding(t, findings, "stalewaiver")
}

func TestStaleAnnotationUnattached(t *testing.T) {
	// guardedby on a line with no struct field and noalloc inside a body
	// (not on the declaration) both fail attachment.
	findings := escapeFixture(t, `package scratch

//bulklint:guardedby mu
var x int

func F() int {
	//bulklint:noalloc
	return x
}
`)
	var lines []int
	for _, f := range findings {
		if f.Rule == "stalewaiver" {
			lines = append(lines, f.Line)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("want 2 stalewaiver findings (lines 3 and 7), got %v: %v", lines, findings)
	}
}
