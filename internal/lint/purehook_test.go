package lint

import "testing"

// simSchedulerFixture is the minimal internal/sim package the purehook rule
// discovers implementations against.
const simSchedulerFixture = `package sim

type BranchKind int

type Scheduler interface {
	PickProc(candidates []int, ready []int64) int
	PickBranch(kind BranchKind, n, def int) int
}
`

func TestPureHookImpureScheduler(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/sim/sim.go": simSchedulerFixture,
		"internal/scratch/s.go": `package scratch

import "bulk/internal/sim"

var seen []int

type Logging struct{}

func (Logging) PickProc(candidates []int, ready []int64) int {
	seen = append(seen, candidates[0])
	return candidates[0]
}

func (Logging) PickBranch(kind sim.BranchKind, n, def int) int { return def }
`,
	})
	wantFinding(t, findings, "purehook", "internal/scratch/s.go", 9)
}

func TestPureHookCleanScheduler(t *testing.T) {
	// Receiver mutation and allocation are allowed; the hook stays replayable.
	findings := lintFixture(t, map[string]string{
		"internal/sim/sim.go": simSchedulerFixture,
		"internal/scratch/s.go": `package scratch

import "bulk/internal/sim"

type Counting struct {
	n     int
	trace []int
}

func (c *Counting) PickProc(candidates []int, ready []int64) int {
	c.n++
	c.trace = append(c.trace, candidates[0])
	return candidates[0]
}

func (c *Counting) PickBranch(kind sim.BranchKind, n, def int) int {
	if n <= 0 {
		panic("bad arity")
	}
	return def
}
`,
	})
	wantNoFinding(t, findings, "purehook")
}

func TestPureHookSchedulerWaiver(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/sim/sim.go": simSchedulerFixture,
		"internal/scratch/s.go": `package scratch

import "bulk/internal/sim"

var seen []int

type Logging struct{}

//bulklint:allow purehook deliberate instrumentation build
func (Logging) PickProc(candidates []int, ready []int64) int {
	seen = append(seen, candidates[0])
	return candidates[0]
}

func (Logging) PickBranch(kind sim.BranchKind, n, def int) int { return def }
`,
	})
	wantNoFinding(t, findings, "purehook")
	wantNoFinding(t, findings, "stalewaiver")
}

func TestPureHookAnnotatedOracle(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

// Oracle replays a run against the reference.
//
//bulklint:purehook
func Oracle(log []int) error {
	println(len(log))
	return nil
}
`,
	})
	wantFinding(t, findings, "purehook", "internal/scratch/s.go", 6)
}

func TestPureHookAnnotatedClean(t *testing.T) {
	// A clean annotated oracle yields no finding, and the annotation
	// attached, so it is not a stale directive either.
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:purehook
func Oracle(log []int) int {
	sum := 0
	for _, v := range log {
		sum += v
	}
	return sum
}
`,
	})
	wantNoFinding(t, findings, "purehook")
	wantNoFinding(t, findings, "stalewaiver")
}

func TestPureHookUnattachedAnnotation(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:purehook
var notAFunction int
`,
	})
	wantFinding(t, findings, "stalewaiver", "internal/scratch/s.go", 3)
}

func TestPureHookEffectPropagates(t *testing.T) {
	// The forbidden effect is inferred through a helper call, not just
	// spotted syntactically in the hook body.
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import "sync"

var mu sync.Mutex

func helper() { mu.Lock(); mu.Unlock() }

//bulklint:purehook
func Oracle() { helper() }
`,
	})
	wantFinding(t, findings, "purehook", "internal/scratch/s.go", 10)
}
