package lint

import (
	"strings"

	"bulk/internal/det"
)

// This file implements the stalewaiver audit, which runs after every
// other analyzer. Each //bulklint: directive must earn its keep:
//
//   - a waiver (ordered / invariant / locked / allow <rule>) must have
//     suppressed at least one live finding of its rule this run;
//   - an annotation (guardedby, noalloc) must have attached to a real
//     declaration (a struct field, a function);
//   - the directive name — and, for allow, the waived rule — must be one
//     the suite knows.
//
// A waiver whose rule was disabled for this run is skipped: its liveness
// is unknown. Audit findings are filed without a package, so they cannot
// themselves be waived — a stale waiver is fixed by deleting it, never by
// waiving the audit.

// directiveKind classifies each directive name the suite understands.
// Rule-waivers map to the rule whose findings they suppress; annotations
// map to "".
var directiveKind = map[string]string{
	"ordered":          "maprange",
	"invariant":        "nakedpanic",
	"locked":           "guardedby",
	"allow":            "", // rule named in the argument
	"guardedby":        "",
	"noalloc":          "",
	"purehook":         "",
	"snapstate":        "",
	"captures":         "",
	"snapstate-ignore": "",
}

func analyzerStaleWaiver() *Analyzer {
	return &Analyzer{
		Name: "stalewaiver",
		Doc:  "//bulklint: directive that suppresses no live finding or names an unknown rule",
		Run: func(pkgs []*Package, r *Reporter) {
			known := map[string]bool{}
			for _, name := range AnalyzerNames() {
				known[name] = true
			}
			for _, pkg := range pkgs {
				for _, file := range det.SortedKeys(pkg.directives) {
					byLine := pkg.directives[file]
					for _, line := range det.SortedKeys(byLine) {
						for _, d := range byLine[line] {
							auditDirective(file, d, known, r)
						}
					}
				}
			}
		},
	}
}

func auditDirective(file string, d *directive, known map[string]bool, r *Reporter) {
	kind, ok := directiveKind[d.name]
	if !ok {
		r.reportAt(file, d.line, d.col, "stalewaiver",
			"unknown //bulklint:%s directive (known: allow, captures, guardedby, invariant, locked, noalloc, ordered, purehook, snapstate, snapstate-ignore)", d.name)
		return
	}
	rule := kind
	if d.name == "allow" {
		rule, _, _ = strings.Cut(d.arg, " ")
		if !known[rule] {
			r.reportAt(file, d.line, d.col, "stalewaiver",
				"//bulklint:allow waives unknown rule %q", rule)
			return
		}
	}
	if d.used {
		return
	}
	switch d.name {
	case "guardedby":
		// collectGuarded (part of the guardedby analyzer) marks attachment.
		if r.ran["guardedby"] {
			r.reportAt(file, d.line, d.col, "stalewaiver",
				"//bulklint:guardedby annotation is not attached to a struct field")
		}
	case "noalloc":
		if r.ran["noalloc"] {
			r.reportAt(file, d.line, d.col, "stalewaiver",
				"//bulklint:noalloc annotation is not attached to a function declaration")
		}
	case "purehook":
		if r.ran["purehook"] {
			r.reportAt(file, d.line, d.col, "stalewaiver",
				"//bulklint:purehook annotation is not attached to a function declaration")
		}
	case "snapstate":
		if r.ran["snapstate"] {
			r.reportAt(file, d.line, d.col, "stalewaiver",
				"//bulklint:snapstate annotation is not attached to a struct type declaration")
		}
	case "captures":
		if r.ran["snapstate"] {
			r.reportAt(file, d.line, d.col, "stalewaiver",
				"//bulklint:captures annotation is not attached to a function declaration")
		}
	case "snapstate-ignore":
		if r.ran["snapstate"] {
			r.reportAt(file, d.line, d.col, "stalewaiver",
				"stale //bulklint:snapstate-ignore waiver: the field is fully covered in every captures method (or the ignore attaches to no snapstate struct); delete it")
		}
	default:
		if !r.ran[rule] {
			return // rule disabled this run: liveness unknown
		}
		r.reportAt(file, d.line, d.col, "stalewaiver",
			"stale //bulklint:%s waiver: it suppresses no live %s finding; delete it", d.name, rule)
	}
}
