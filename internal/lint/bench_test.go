package lint

import "testing"

// The benchmarks time the full suite over the real module — the number
// scripts/check.sh smoke-checks against bench/baseline/lint.txt. Loading
// (parse + type-check) is done once outside the timed loop: the interesting
// costs are the analyzers and the effect fixpoint, not the parser.

func BenchmarkLintModule(b *testing.B) {
	pkgs, fset, err := LoadModule("../..")
	if err != nil {
		b.Fatalf("LoadModule: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findings := RunAnalyzers(pkgs, fset, nil)
		if len(findings) != 0 {
			b.Fatalf("module is not lint-clean: %v", findings[0])
		}
	}
}

func BenchmarkInferEffects(b *testing.B) {
	pkgs, _, err := LoadModule("../..")
	if err != nil {
		b.Fatalf("LoadModule: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(InferEffects(pkgs)) == 0 {
			b.Fatal("empty effect report")
		}
	}
}
