package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestFindingsTotalOrder(t *testing.T) {
	// The sort is a total order over (file, line, col, rule, msg): two
	// findings at the same position from the same rule still order
	// deterministically by message.
	r := NewReporter(token.NewFileSet())
	r.reportAt("z.go", 1, 1, "rule", "zeta")
	r.reportAt("a.go", 2, 1, "rule", "x")
	r.reportAt("a.go", 1, 5, "beta", "x")
	r.reportAt("a.go", 1, 5, "alpha", "x")
	r.reportAt("a.go", 1, 5, "alpha", "second message")
	r.reportAt("a.go", 1, 2, "rule", "x")

	var got []string
	for _, f := range r.Findings() {
		got = append(got, f.String())
	}
	want := []string{
		"a.go:1: [rule] x",              // col 2
		"a.go:1: [alpha] second message", // col 5: rule then msg tie-break
		"a.go:1: [alpha] x",
		"a.go:1: [beta] x",
		"a.go:2: [rule] x",
		"z.go:1: [rule] zeta",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFindingsGoldenDeterministic(t *testing.T) {
	// Two independent loads of the same sources must render byte-identical
	// output, pinned against a golden transcript.
	files := map[string]string{
		"internal/scratch/s.go": `package scratch

func Keys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func Panics() {
	panic("boom")
}
`,
	}
	render := func() string {
		pkgs, fset, err := LoadFixture("bulk", files)
		if err != nil {
			t.Fatalf("LoadFixture: %v", err)
		}
		var b strings.Builder
		for _, f := range RunAnalyzers(pkgs, fset, nil) {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("output is not deterministic:\n%s\nvs\n%s", first, second)
	}
	want := "internal/scratch/s.go:5: [maprange] map iteration order escapes via return (line 8); range det.SortedKeys(m) instead, or waive with //bulklint:ordered <why>\n" +
		"internal/scratch/s.go:12: [nakedpanic] panic in Panics; return an error, move it into a Must* helper, or waive with //bulklint:invariant <why>\n"
	if first != want {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", first, want)
	}
}
