package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file implements the snapstate rule: a static field-coverage proof
// for the Snapshot/Restore/CopyFrom machinery the fork-point snapshot
// engine rests on. A struct annotated `//bulklint:snapstate` declares
// "every field of this struct is part of the captured machine state"; the
// struct's capture methods are declared with `//bulklint:captures
// <kind> [TypeName ...]` (kind one of snapshot, restore, copyfrom, reset;
// with no type names the annotation covers the method's receiver type).
// The rule then checks, per (struct, capture method):
//
//   - every non-ignored field is referenced — read or written, directly or
//     inside a statically-resolved callee reachable through the module
//     call graph — somewhere in the method. Adding a field to tm.System
//     without touching Snapshot/Restore becomes a build-gate failure, not
//     a latent divergence a differential test may or may not hit.
//   - a field whose type transitively holds a pointer, slice or map, and
//     which the method assigns whole, must additionally carry a deep-copy
//     witness: the field appearing in an append/copy/make/CopyFrom/clone
//     call, or being assigned a fresh composite literal or nil. A plain
//     `dst.buf = src.buf` aliases the snapshot against the live system —
//     exactly the bug class that silently breaks snapshot-vs-replay
//     byte-identity — and is a finding. reset-kind methods are exempt
//     (rewinding to a zero value cannot introduce sharing); interface,
//     func and chan fields are exempt (they are rebound, never deep-copied).
//
// `//bulklint:snapstate-ignore <field> <reason>` inside the struct
// declaration waives one field; the waiver flows through the stalewaiver
// audit, so an ignore whose field is in fact fully covered is itself a
// finding.

// captureKinds are the recognized //bulklint:captures kinds.
var captureKinds = map[string]bool{
	"snapshot": true,
	"restore":  true,
	"copyfrom": true,
	"reset":    true,
}

// deepCopyVocab names the calls accepted as deep-copy witnesses. Matching
// is syntactic (the called name's last component): the witness is a
// heuristic hint that fresh storage is involved, kept deliberately wide so
// delegation (mem.CopyFrom -> flatmap.CopyFrom) and in-package helpers
// (cache.copyLine) all count.
var deepCopyVocab = map[string]bool{
	"append":    true,
	"copy":      true,
	"make":      true,
	"CopyFrom":  true,
	"SaveState": true,
	"LoadState": true,
	"Snapshot":  true,
	"Restore":   true,
	"Clone":     true,
	"clone":     true,
	"copyLine":  true,
}

// snapField is one field of an annotated struct.
type snapField struct {
	name      string
	needsDeep bool       // type transitively holds pointer/slice/map
	ignore    *directive // //bulklint:snapstate-ignore, nil if none
}

// capMethod is one //bulklint:captures entry attached to a struct.
type capMethod struct {
	kind string
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// snapRecord is one //bulklint:snapstate struct with its capture methods.
type snapRecord struct {
	pkg     *Package
	obj     *types.TypeName
	pos     token.Pos
	fields  []*snapField
	byName  map[string]*snapField
	methods []*capMethod
}

// fieldUse accumulates what a capture method's reachable bodies do with
// one field.
type fieldUse struct {
	referenced bool
	written    bool // assigned whole (not through an index)
	witnessed  bool
	firstWrite token.Pos
}

// bodyScan is one function body's field-use facts, per annotated struct.
type bodyScan map[*types.TypeName]map[string]*fieldUse

func analyzerSnapState() *Analyzer {
	return &Analyzer{
		Name: "snapstate",
		Doc:  "snapstate struct field unreferenced in a captures method, or aliased without a deep-copy witness",
		Run: func(pkgs []*Package, r *Reporter) {
			records, index := collectSnapStructs(pkgs, r)
			if len(records) == 0 {
				return
			}
			collectCaptureMethods(pkgs, index, r)
			cg := r.callGraph(pkgs)
			scans := map[*types.Func]bodyScan{}
			for _, rec := range records {
				if len(rec.methods) == 0 {
					r.Report(rec.pkg, rec.pos, "snapstate",
						"struct %s is annotated //bulklint:snapstate but no method carries a //bulklint:captures annotation covering it",
						rec.obj.Name())
					continue
				}
				for _, m := range rec.methods {
					checkCoverage(rec, m, cg, index, scans, r)
				}
			}
		},
	}
}

// collectSnapStructs finds every annotated struct and its per-field ignore
// directives.
func collectSnapStructs(pkgs []*Package, r *Reporter) ([]*snapRecord, map[*types.TypeName]*snapRecord) {
	var records []*snapRecord
	index := map[*types.TypeName]*snapRecord{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					if rec := buildSnapRecord(pkg, gd, ts, st, r); rec != nil {
						records = append(records, rec)
						index[rec.obj] = rec
					}
				}
			}
		}
	}
	return records, index
}

// buildSnapRecord returns the record for one struct declaration, or nil
// when it carries no snapstate annotation.
func buildSnapRecord(pkg *Package, gd *ast.GenDecl, ts *ast.TypeSpec, st *ast.StructType, r *Reporter) *snapRecord {
	file := sharedFset.Position(ts.Name.Pos()).Filename
	start := sharedFset.Position(gd.Pos()).Line
	if gd.Doc != nil {
		start = sharedFset.Position(gd.Doc.Pos()).Line
	}
	if ts.Doc != nil {
		if l := sharedFset.Position(ts.Doc.Pos()).Line; l < start {
			start = l
		}
	}
	nameLine := sharedFset.Position(ts.Name.Pos()).Line
	ann := directiveInRange(pkg, file, start, nameLine, "snapstate")
	if ann == nil {
		return nil
	}
	ann.used = true
	tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	rec := &snapRecord{pkg: pkg, obj: tn, pos: ts.Name.Pos(), byName: map[string]*snapField{}}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			obj, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			sf := &snapField{name: name.Name, needsDeep: typeNeedsDeepCopy(obj.Type(), nil)}
			rec.fields = append(rec.fields, sf)
			rec.byName[sf.name] = sf
		}
	}
	endLine := sharedFset.Position(st.End()).Line
	for line := start; line <= endLine; line++ {
		for _, d := range pkg.directives[file][line] {
			if d.name != "snapstate-ignore" {
				continue
			}
			fld, reason, _ := strings.Cut(d.arg, " ")
			if fld == "" || strings.TrimSpace(reason) == "" {
				d.used = true
				r.reportAt(file, d.line, d.col, "snapstate",
					"malformed //bulklint:snapstate-ignore: want <field> <reason>")
				continue
			}
			sf := rec.byName[fld]
			if sf == nil {
				d.used = true
				r.reportAt(file, d.line, d.col, "snapstate",
					"//bulklint:snapstate-ignore names %q, which is not a field of %s", fld, tn.Name())
				continue
			}
			if sf.ignore != nil {
				d.used = true
				r.reportAt(file, d.line, d.col, "snapstate",
					"duplicate //bulklint:snapstate-ignore for field %s.%s", tn.Name(), fld)
				continue
			}
			sf.ignore = d
		}
	}
	return rec
}

// collectCaptureMethods attaches every //bulklint:captures annotation to
// the records it names.
func collectCaptureMethods(pkgs []*Package, index map[*types.TypeName]*snapRecord, r *Reporter) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for _, d := range pkg.funcAnnotationsAll(sharedFset, fd, "captures") {
					attachCapture(pkg, fd, d, index, r)
				}
			}
		}
	}
}

func attachCapture(pkg *Package, fd *ast.FuncDecl, d *directive, index map[*types.TypeName]*snapRecord, r *Reporter) {
	d.used = true
	file := sharedFset.Position(fd.Pos()).Filename
	parts := strings.Fields(d.arg)
	if len(parts) == 0 {
		r.reportAt(file, d.line, d.col, "snapstate",
			"malformed //bulklint:captures: want <kind> [TypeName ...]")
		return
	}
	kind := parts[0]
	if !captureKinds[kind] {
		r.reportAt(file, d.line, d.col, "snapstate",
			"unknown //bulklint:captures kind %q (want snapshot, restore, copyfrom or reset)", kind)
		return
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	fn = fn.Origin()
	if len(parts) == 1 {
		tn := receiverTypeName(fn)
		if tn == nil {
			r.reportAt(file, d.line, d.col, "snapstate",
				"//bulklint:captures with no type names requires a method with a named receiver type")
			return
		}
		rec := index[tn]
		if rec == nil {
			r.reportAt(file, d.line, d.col, "snapstate",
				"receiver type %s of %s is not annotated //bulklint:snapstate", tn.Name(), funcDisplayName(fd))
			return
		}
		rec.methods = append(rec.methods, &capMethod{kind: kind, fn: fn, decl: fd, pkg: pkg})
		return
	}
	for _, name := range parts[1:] {
		obj, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
		var rec *snapRecord
		if ok {
			rec = index[obj]
		}
		if rec == nil {
			r.reportAt(file, d.line, d.col, "snapstate",
				"//bulklint:captures names %q, which is not a //bulklint:snapstate struct in package %s", name, pkg.Path)
			continue
		}
		rec.methods = append(rec.methods, &capMethod{kind: kind, fn: fn, decl: fd, pkg: pkg})
	}
}

// receiverTypeName resolves a method's receiver to its named type's origin.
func receiverTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Origin().Obj()
}

// checkCoverage verifies one (struct, capture method) pair: every
// non-ignored field referenced in the method's reachable bodies, every
// written pointer-holding field witnessed.
func checkCoverage(rec *snapRecord, m *capMethod, cg *callGraph, index map[*types.TypeName]*snapRecord, scans map[*types.Func]bodyScan, r *Reporter) {
	agg := map[string]*fieldUse{}
	for _, node := range reachableNodes(cg, m.fn) {
		bs := scans[node.fn]
		if bs == nil {
			bs = scanFuncBody(node, index)
			scans[node.fn] = bs
		}
		uses := bs[rec.obj]
		for _, f := range rec.fields {
			u := uses[f.name]
			if u == nil {
				continue
			}
			a := agg[f.name]
			if a == nil {
				a = &fieldUse{}
				agg[f.name] = a
			}
			a.referenced = a.referenced || u.referenced
			a.witnessed = a.witnessed || u.witnessed
			if u.written {
				a.written = true
				if a.firstWrite == token.NoPos || u.firstWrite < a.firstWrite {
					a.firstWrite = u.firstWrite
				}
			}
		}
	}
	for _, f := range rec.fields {
		u := agg[f.name]
		missingRef := u == nil || !u.referenced
		missingWit := m.kind != "reset" && f.needsDeep && u != nil && u.written && !u.witnessed
		if f.ignore != nil {
			if missingRef || missingWit {
				f.ignore.used = true
			}
			continue
		}
		if missingRef {
			r.Report(m.pkg, m.decl.Name.Pos(), "snapstate",
				"field %s.%s is not referenced in captures-%s method %s (directly or via static callees); capture it or waive with //bulklint:snapstate-ignore %s <why>",
				rec.obj.Name(), f.name, m.kind, funcDisplayName(m.decl), f.name)
			continue
		}
		if missingWit {
			r.Report(rec.pkg, u.firstWrite, "snapstate",
				"field %s.%s holds pointer/slice/map state but captures-%s method %s assigns it with no deep-copy witness (append/copy/CopyFrom/clone/fresh literal); a plain assignment aliases snapshot and live state",
				rec.obj.Name(), f.name, m.kind, funcDisplayName(m.decl))
		}
	}
}

// reachableNodes returns the method's static call-graph closure in
// deterministic BFS order (call sites in source order).
func reachableNodes(cg *callGraph, fn *types.Func) []*funcNode {
	start := cg.nodes[fn]
	if start == nil {
		return nil
	}
	visited := map[*types.Func]bool{fn: true}
	queue := []*funcNode{start}
	for i := 0; i < len(queue); i++ {
		for _, cs := range queue[i].calls {
			if visited[cs.callee] {
				continue
			}
			visited[cs.callee] = true
			if node := cg.nodes[cs.callee]; node != nil {
				queue = append(queue, node)
			}
		}
	}
	return queue
}

// scanFuncBody computes one body's field-use facts for every annotated
// struct.
func scanFuncBody(node *funcNode, index map[*types.TypeName]*snapRecord) bodyScan {
	s := &bodyScanner{pkg: node.pkg, index: index, out: bodyScan{}}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if tn, fname := s.resolveField(n); tn != nil {
				s.use(tn, fname, token.NoPos).referenced = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				s.markAssign(lhs, rhs)
			}
		case *ast.IncDecStmt:
			s.markAssign(n.X, nil)
		case *ast.CallExpr:
			s.markCallWitness(n)
		case *ast.CompositeLit:
			s.markComposite(n)
		}
		return true
	})
	return s.out
}

type bodyScanner struct {
	pkg   *Package
	index map[*types.TypeName]*snapRecord
	out   bodyScan
}

// use returns the accumulator for one (struct, field), creating it on
// first touch; a valid writePos records the earliest write position.
func (s *bodyScanner) use(tn *types.TypeName, fname string, writePos token.Pos) *fieldUse {
	m := s.out[tn]
	if m == nil {
		m = map[string]*fieldUse{}
		s.out[tn] = m
	}
	u := m[fname]
	if u == nil {
		u = &fieldUse{}
		m[fname] = u
	}
	if writePos != token.NoPos {
		u.written = true
		if u.firstWrite == token.NoPos || writePos < u.firstWrite {
			u.firstWrite = writePos
		}
	}
	return u
}

// resolveField maps a selector to (annotated struct, field name), or nil.
func (s *bodyScanner) resolveField(sel *ast.SelectorExpr) (*types.TypeName, string) {
	selection, ok := s.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, ""
	}
	tn := namedOriginObj(selection.Recv())
	if tn == nil {
		return nil, ""
	}
	rec := s.index[tn]
	if rec == nil || rec.byName[sel.Sel.Name] == nil {
		return nil, ""
	}
	return tn, sel.Sel.Name
}

// recordType maps an expression's type to an annotated struct, or nil.
func (s *bodyScanner) recordType(e ast.Expr) *types.TypeName {
	tv, ok := s.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	tn := namedOriginObj(t)
	if tn == nil || s.index[tn] == nil {
		return nil
	}
	return tn
}

// markAssign records a whole-field write (and its witness, when the RHS is
// a fresh value) or a whole-struct write covering every field. Writes
// through an index (s.lines[i] = ...) are element mutations, not field
// rebinds, and count only as references.
func (s *bodyScanner) markAssign(lhs, rhs ast.Expr) {
	l := unparen(lhs)
	if sel, ok := l.(*ast.SelectorExpr); ok {
		if tn, fname := s.resolveField(sel); tn != nil {
			u := s.use(tn, fname, sel.Sel.Pos())
			u.referenced = true
			if rhs != nil && s.witnessRHS(rhs) {
				u.witnessed = true
			}
			return
		}
	}
	// Whole-struct write: *dst = *src, or a value-typed variable/field of
	// an annotated struct type assigned whole. Every field is written; a
	// fresh-composite RHS witnesses them all.
	var core ast.Expr
	switch x := l.(type) {
	case *ast.StarExpr:
		core = l
	case *ast.Ident:
		core = x
	default:
		return
	}
	tn := s.wholeStructTarget(core)
	if tn == nil {
		return
	}
	rec := s.index[tn]
	wit := rhs != nil && s.witnessRHS(rhs)
	for _, f := range rec.fields {
		u := s.use(tn, f.name, l.Pos())
		u.referenced = true
		if wit {
			u.witnessed = true
		}
	}
}

// wholeStructTarget resolves an assignment LHS to an annotated struct type
// when the LHS denotes a whole struct value (never a pointer binding: a
// pointer reassignment moves a reference, it does not write fields).
func (s *bodyScanner) wholeStructTarget(e ast.Expr) *types.TypeName {
	tv, ok := s.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return nil
	}
	tn := namedOriginObj(tv.Type)
	if tn == nil || s.index[tn] == nil {
		return nil
	}
	return tn
}

// markCallWitness marks every annotated field appearing in a deep-copy
// vocabulary call — as an argument or in the method receiver — witnessed.
func (s *bodyScanner) markCallWitness(call *ast.CallExpr) {
	name := calleeName(call)
	if !deepCopyVocab[name] {
		return
	}
	exprs := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	exprs = append(exprs, call.Args...)
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if tn, fname := s.resolveField(sel); tn != nil {
					u := s.use(tn, fname, token.NoPos)
					u.referenced = true
					u.witnessed = true
				}
			}
			return true
		})
	}
}

// markComposite treats an annotated-struct composite literal as writing
// its listed fields (all of them when unkeyed), each element's freshness
// judged like an assignment RHS.
func (s *bodyScanner) markComposite(cl *ast.CompositeLit) {
	tn := s.recordType(cl)
	if tn == nil {
		return
	}
	rec := s.index[tn]
	if len(cl.Elts) == 0 {
		// S{}: every field is deliberately zeroed — covered, and the zero
		// value (nil slices/maps/pointers) cannot alias anything.
		for _, f := range rec.fields {
			u := s.use(tn, f.name, cl.Pos())
			u.referenced = true
			u.witnessed = true
		}
		return
	}
	keyed := false
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyed = true
		key, ok := kv.Key.(*ast.Ident)
		if !ok || rec.byName[key.Name] == nil {
			continue
		}
		u := s.use(tn, key.Name, key.Pos())
		u.referenced = true
		if s.witnessRHS(kv.Value) {
			u.witnessed = true
		}
	}
	if !keyed {
		for i, f := range rec.fields {
			u := s.use(tn, f.name, cl.Pos())
			u.referenced = true
			if i < len(cl.Elts) && s.witnessRHS(cl.Elts[i]) {
				u.witnessed = true
			}
		}
	}
}

// witnessRHS reports whether an assigned value is visibly fresh: a
// composite literal (plain or addressed), nil, or a deep-copy vocabulary
// call.
func (s *bodyScanner) witnessRHS(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CallExpr:
		return deepCopyVocab[calleeName(x)]
	}
	return false
}

// calleeName extracts the syntactic last component of a call's function
// name ("" when anonymous or computed).
func calleeName(call *ast.CallExpr) string {
	fun := unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.Ident:
			return f.Name
		case *ast.SelectorExpr:
			return f.Sel.Name
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		default:
			return ""
		}
	}
}

// namedOriginObj unwraps a type to its named origin's TypeName, or nil.
func namedOriginObj(t types.Type) *types.TypeName {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Origin().Obj()
}

// typeNeedsDeepCopy reports whether a type transitively holds a pointer,
// slice or map — the shapes where a whole-value assignment shares backing
// storage. Interfaces, funcs and chans are exempt: capture methods rebind
// them, they never deep-copy through them. Strings are immutable and safe
// to share.
func typeNeedsDeepCopy(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	case *types.Array:
		return typeNeedsDeepCopy(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeNeedsDeepCopy(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// directiveInRange returns the first directive with the given name whose
// line falls in [start, end] of file, or nil.
func directiveInRange(pkg *Package, file string, start, end int, name string) *directive {
	byLine := pkg.directives[file]
	if byLine == nil {
		return nil
	}
	for line := start; line <= end; line++ {
		for _, d := range byLine[line] {
			if d.name == name {
				return d
			}
		}
	}
	return nil
}
