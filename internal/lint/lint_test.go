package lint

import (
	"strings"
	"testing"
)

// lintFixture type-checks the given sources under a fictional "bulk" module
// and returns all findings (no rules disabled).
func lintFixture(t *testing.T, files map[string]string) []Finding {
	t.Helper()
	pkgs, fset, err := LoadFixture("bulk", files)
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	return RunAnalyzers(pkgs, fset, nil)
}

// wantFinding asserts exactly one finding of rule, at file:line when line > 0.
func wantFinding(t *testing.T, findings []Finding, rule, file string, line int) {
	t.Helper()
	var matches []Finding
	for _, f := range findings {
		if f.Rule == rule {
			matches = append(matches, f)
		}
	}
	if len(matches) != 1 {
		t.Fatalf("want exactly 1 %s finding, got %d: %v", rule, len(matches), matches)
	}
	f := matches[0]
	if !strings.HasSuffix(f.File, file) {
		t.Errorf("finding file = %s, want suffix %s", f.File, file)
	}
	if line > 0 && f.Line != line {
		t.Errorf("finding line = %d, want %d", f.Line, line)
	}
}

func wantNoFinding(t *testing.T, findings []Finding, rule string) {
	t.Helper()
	for _, f := range findings {
		if f.Rule == rule {
			t.Errorf("unexpected %s finding: %v", rule, f)
		}
	}
}

func TestMapRange(t *testing.T) {
	// Unsorted keys escaping via return: iteration order reaches the caller.
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

func Keys(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`,
	})
	wantFinding(t, findings, "maprange", "internal/scratch/s.go", 5)
}

func TestMapRangeWaiver(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

func Keys(m map[int]int) []int {
	var keys []int
	for k := range m { //bulklint:ordered caller sorts
		keys = append(keys, k)
	}
	return keys
}

func Keys2(m map[int]int) (keys []int) {
	//bulklint:ordered waiver on the line above the loop also works
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`,
	})
	wantNoFinding(t, findings, "maprange")
	// Both waivers suppress live findings, so neither is stale.
	wantNoFinding(t, findings, "stalewaiver")
}

func TestMapRangeSortedKeysClean(t *testing.T) {
	// The det.SortedKeys idiom needs no waiver anymore: sorting launders the
	// iteration order before it escapes, and reductions are order-free.
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import "sort"

func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func Walk(m map[string]int) int {
	total := 0
	for _, k := range Keys(m) {
		total += m[k]
	}
	return total
}
`,
	})
	wantNoFinding(t, findings, "maprange")
}

func TestRandSrc(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import (
	"math/rand"
	"time"
)

func Jitter() int64 {
	return time.Now().UnixNano() + int64(rand.Int())
}
`,
	})
	var rules []string
	for _, f := range findings {
		if f.Rule == "randsrc" {
			rules = append(rules, f.Rule)
		}
	}
	if len(rules) != 2 {
		t.Fatalf("want 2 randsrc findings (import + time.Now), got %d: %v", len(rules), findings)
	}
}

func TestRandSrcScope(t *testing.T) {
	// internal/rng may own generator state; cmd/ may read the clock.
	findings := lintFixture(t, map[string]string{
		"internal/rng/r.go": `package rng

import "math/rand"

func New() *rand.Rand { return rand.New(rand.NewSource(1)) }
`,
		"cmd/tool/main.go": `package main

import (
	"fmt"
	"time"
)

func main() { fmt.Println(time.Now()) }
`,
	})
	wantNoFinding(t, findings, "randsrc")
}

func TestSigPurityMutatingIntersect(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

type Signature struct {
	bits []uint64
}

func (s *Signature) Intersect(o *Signature) *Signature {
	for i := range s.bits {
		s.bits[i] &= o.bits[i]
	}
	return s
}
`,
	})
	wantFinding(t, findings, "sigpurity", "internal/scratch/s.go", 9)
}

func TestSigPurityPureClean(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

type Signature struct {
	bits []uint64
}

func (s *Signature) Clone() *Signature {
	n := &Signature{bits: make([]uint64, len(s.bits))}
	copy(n.bits, s.bits)
	return n
}

func (s *Signature) Intersect(o *Signature) *Signature {
	n := s.Clone()
	for i := range n.bits {
		n.bits[i] &= o.bits[i]
	}
	return n
}

func (s *Signature) Contains(x uint64) bool {
	return s.bits[x%uint64(len(s.bits))] != 0
}
`,
	})
	wantNoFinding(t, findings, "sigpurity")
}

func TestSigPurityMutatorCall(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

type Signature struct {
	bits []uint64
}

func (s *Signature) UnionWith(o *Signature) {
	for i := range s.bits {
		s.bits[i] |= o.bits[i]
	}
}

func (s *Signature) Union(o *Signature) *Signature {
	s.UnionWith(o)
	return s
}
`,
	})
	wantFinding(t, findings, "sigpurity", "internal/scratch/s.go", 14)
}

func TestGuardedBy(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import "sync"

type Meter struct {
	mu sync.Mutex
	//bulklint:guardedby mu
	total int
}

func (m *Meter) Add(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total += n
}

func (m *Meter) Peek() int {
	return m.total
}

//bulklint:locked caller holds mu
func (m *Meter) addLocked(n int) {
	m.total += n
}
`,
	})
	wantFinding(t, findings, "guardedby", "internal/scratch/s.go", 18)
}

func TestDroppedErr(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import (
	"errors"
	"fmt"
)

func fail() error { return errors.New("boom") }

func Run() {
	fail()
	_ = fail()
	fmt.Println("ok")
	if err := fail(); err != nil {
		fmt.Println(err)
	}
}
`,
	})
	wantFinding(t, findings, "droppederr", "internal/scratch/s.go", 11)
}

func TestNakedPanic(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

func MustPositive(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}

func Checked(n int) int {
	if n <= 0 {
		panic("not positive") //bulklint:invariant callers validate n at construction
	}
	return n
}

func Bad(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}
`,
	})
	wantFinding(t, findings, "nakedpanic", "internal/scratch/s.go", 19)
}

func TestDisableRule(t *testing.T) {
	pkgs, fset, err := LoadFixture("bulk", map[string]string{
		"internal/scratch/s.go": `package scratch

func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`,
	})
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	findings := RunAnalyzers(pkgs, fset, map[string]bool{"maprange": true})
	wantNoFinding(t, findings, "maprange")
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/x/x.go", Line: 12, Col: 3, Rule: "maprange", Msg: "bad loop"}
	want := "internal/x/x.go:12: [maprange] bad loop"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestFindingsSorted(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

func A(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	if len(out) == 0 {
		panic("x")
	}
	return out
}
`,
		"internal/alpha/a.go": `package alpha

func B(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	})
	if len(findings) < 3 {
		t.Fatalf("want >= 3 findings, got %v", findings)
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %v before %v", a, b)
		}
	}
}

func TestAnalyzerNames(t *testing.T) {
	want := []string{"maprange", "randsrc", "sigpurity", "guardedby", "droppederr", "nakedpanic", "noalloc", "purehook", "atomicmix", "layerdep", "snapstate", "capturesafe", "stalewaiver"}
	got := AnalyzerNames()
	if len(got) != len(want) {
		t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("AnalyzerNames()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
