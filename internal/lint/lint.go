// Package lint implements bulklint, the project's static-analysis pass.
//
// The simulator's experimental claims rest on two properties nothing in the
// compiler enforces: determinism (identical seeds must produce byte-identical
// runs, so map-iteration order and ambient randomness must never reach
// simulator state) and the Bulk invariants of Ceze et al. (ISCA 2006) —
// signatures are value-semantic under the Table 1 algebra, and shared
// mutable state on the commit paths is touched only under its lock. bulklint
// parses and type-checks every package in the module using only the Go
// standard library and runs a suite of project-specific analyzers over the
// result. Each finding is reported as `file:line: [rule] message`.
//
// Rules (each can be disabled with the CLI's -disable flag):
//
//   - maprange:   `for … range` over a map in non-test code. Iterate
//     det.SortedKeys(m) instead, or waive with `//bulklint:ordered <why>`
//     when order provably cannot escape into simulator state.
//   - randsrc:    imports of math/rand (v1 or v2) or calls to time.Now
//     under internal/, outside internal/rng. Workloads must draw all
//     randomness from the seeded internal/rng streams.
//   - sigpurity:  a method named like a pure Bulk algebra operation
//     (Intersect, Union, Contains, Decode, …) that mutates its receiver.
//     The paper's ∩/∪/∈/δ operators are value-semantic; in-place variants
//     must be named like mutators (UnionWith, IntersectWith, …).
//   - guardedby:  access to a field annotated `//bulklint:guardedby <mu>`
//     from a function that never acquires <mu>. Waive a whole function
//     with `//bulklint:locked <why>` when its caller holds the lock.
//   - droppederr: a call statement (including go/defer) whose error result
//     is silently discarded.
//   - nakedpanic: a panic outside a Must*-style constructor. Waive with
//     `//bulklint:invariant <why>` for genuine internal-invariant guards.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one diagnostic.
type Finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"message"`
}

// String renders the canonical `file:line: [rule] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Analyzer is one named rule run over the whole loaded module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pkgs []*Package, r *Reporter)
}

// Analyzers returns every rule in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerMapRange(),
		analyzerRandSrc(),
		analyzerSigPurity(),
		analyzerGuardedBy(),
		analyzerDroppedErr(),
		analyzerNakedPanic(),
	}
}

// AnalyzerNames returns the known rule names in order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Reporter collects findings, applying waiver comments.
type Reporter struct {
	fset     *token.FileSet
	findings []Finding
}

// NewReporter returns a reporter resolving positions against fset.
func NewReporter(fset *token.FileSet) *Reporter {
	return &Reporter{fset: fset}
}

// Report files a finding for rule at pos unless the owning package waived it
// there. pkg may be nil (no waiver lookup).
func (r *Reporter) Report(pkg *Package, pos token.Pos, rule, format string, args ...any) {
	p := r.fset.Position(pos)
	if pkg != nil && pkg.waivedAt(p.Filename, p.Line, rule) {
		return
	}
	r.findings = append(r.findings, Finding{
		File: p.Filename,
		Line: p.Line,
		Col:  p.Column,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Findings returns the collected findings sorted by file, line, column and
// rule — a stable order regardless of analyzer scheduling.
func (r *Reporter) Findings() []Finding {
	out := append([]Finding(nil), r.findings...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out
}

// Run loads the module rooted at root and runs every analyzer not named in
// disabled. It returns the sorted findings.
func Run(root string, disabled map[string]bool) ([]Finding, error) {
	pkgs, fset, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(pkgs, fset, disabled), nil
}

// RunAnalyzers runs the enabled analyzers over already-loaded packages.
func RunAnalyzers(pkgs []*Package, fset *token.FileSet, disabled map[string]bool) []Finding {
	r := NewReporter(fset)
	for _, a := range Analyzers() {
		if disabled[a.Name] {
			continue
		}
		a.Run(pkgs, r)
	}
	return r.Findings()
}
