// Package lint implements bulkvet (historically bulklint), the project's
// static-analysis suite.
//
// The simulator's experimental claims rest on properties nothing in the
// compiler enforces: determinism (identical seeds must produce byte-identical
// runs, so map-iteration order and ambient randomness must never reach
// simulator state), the Bulk invariants of Ceze et al. (ISCA 2006) —
// signatures are value-semantic under the Table 1 algebra, shared mutable
// state on the commit paths is touched only under its lock — and the
// zero-allocation contract of the signature/flatmap/cache hot kernels.
// bulkvet parses and type-checks every package in the module using only the
// Go standard library, builds a module-wide static call graph, and runs a
// suite of analyzers — some per-node pattern matches, some flow- and
// call-graph-sensitive — over the result. Each finding is reported as
// `file:line: [rule] message`.
//
// Rules (each can be disabled with the CLI's -disable flag, or selected
// with -rules):
//
//   - maprange:   order-escape analysis. A `for … range` over a map is
//     reported only when a value derived from the iteration can escape
//     into order-sensitive state: returned, stored to package-level or
//     caller-visible state, sent on a channel, passed to a sink package
//     (fmt printing, io, internal/stats, internal/trace, internal/bus,
//     internal/sim) or used in an order-dependent sequence of effectful
//     calls. Order-independent reductions (integer +=, |=, …), building
//     other keyed structures, and values laundered through sort.* /
//     slices.Sort* are clean. Iterate det.SortedKeys(m) where order can
//     escape, or waive with `//bulklint:ordered <why>`.
//   - randsrc:    imports of math/rand (v1 or v2) or calls to time.Now
//     under internal/, outside internal/rng. Workloads must draw all
//     randomness from the seeded internal/rng streams.
//   - sigpurity:  a method named like a pure Bulk algebra operation
//     (Intersect, Union, Contains, Decode, …) that mutates its receiver.
//     The paper's ∩/∪/∈/δ operators are value-semantic; in-place variants
//     must be named like mutators (UnionWith, IntersectWith, …).
//   - guardedby:  interprocedural lockset analysis for fields annotated
//     `//bulklint:guardedby <mu>`. An access is reported unless the named
//     mutex is held on every path reaching it — acquired earlier in the
//     function, or held at entry by every static caller. Waive a whole
//     function with `//bulklint:locked <why>` when the lock is provided
//     in a way the analysis cannot see.
//   - droppederr: a call statement (including go/defer) whose error result
//     is silently discarded.
//   - nakedpanic: a panic outside a Must*-style constructor. Waive with
//     `//bulklint:invariant <why>` for genuine internal-invariant guards.
//   - noalloc:    a function annotated `//bulklint:noalloc` (and everything
//     it statically calls) must not contain allocation-introducing
//     constructs: make/new, composite literals, append, closures, string
//     concatenation or conversion, builtin-map writes, interface boxing,
//     fmt, go statements, or calls into non-allowlisted packages. Built on
//     the effect engine (effects.go). Waive a cold call site with
//     `//bulklint:allow noalloc <why>`.
//   - purehook:   every sim.Scheduler implementation and every function
//     annotated `//bulklint:purehook` (the replay oracles) must infer
//     effect-free-except-reads on the effect lattice — alloc, panic and
//     receiver mutation allowed; io, nondeterminism, global writes,
//     locks, goroutines, channels and unverifiable calls forbidden.
//     Schedule replay is a verified property, not a convention.
//   - atomicmix:  a location accessed through the pointer-style
//     sync/atomic API anywhere in the module must never be accessed by a
//     plain load/store elsewhere. Typed atomics are exempt by
//     construction.
//   - layerdep:   the package-layer DAG declared in
//     internal/lint/layers.txt is enforced against actual imports; an
//     intra-module import must target a strictly lower layer.
//   - snapstate:  field-coverage proof for snapshot machinery. A struct
//     annotated `//bulklint:snapstate` must have every non-ignored field
//     referenced — directly or via static callees — in each method
//     annotated `//bulklint:captures snapshot|restore|copyfrom|reset`;
//     pointer/slice/map-holding fields assigned there additionally need a
//     deep-copy witness (append/copy/CopyFrom/clone/fresh literal), so a
//     shallow `dst.buf = src.buf` alias is a finding. Waive one field with
//     `//bulklint:snapstate-ignore <field> <why>`.
//   - capturesafe: a variable captured by a worker closure (par.ForEach /
//     par.Map / par.StealForEach bodies, `go` statements) and written
//     there must land in a slice/array index slot, under a held lock, or
//     through shard/atomic calls; anything else is a statically detected
//     data race. Waive with `//bulklint:allow capturesafe <why>`.
//   - stalewaiver: every //bulklint: directive must earn its keep — a
//     waiver that suppresses no live finding of its rule, an annotation
//     attached to nothing, or a directive naming an unknown rule is
//     itself reported. Stale-waiver findings cannot be waived.
//
// The interprocedural effect-inference engine behind noalloc and purehook
// (effects.go) is also exported directly: `bulklint -effects` prints every
// function's inferred effect summary as a deterministic, byte-identical
// report.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Finding is one diagnostic.
type Finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"message"`
}

// String renders the canonical `file:line: [rule] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// Analyzer is one named rule run over the whole loaded module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pkgs []*Package, r *Reporter)
}

// Analyzers returns every rule in execution order. stalewaiver must run
// last: it audits the waiver-usage marks left by the other analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerMapRange(),
		analyzerRandSrc(),
		analyzerSigPurity(),
		analyzerGuardedBy(),
		analyzerDroppedErr(),
		analyzerNakedPanic(),
		analyzerNoalloc(),
		analyzerPureHook(),
		analyzerAtomicMix(),
		analyzerLayerDep(),
		analyzerSnapState(),
		analyzerCaptureSafe(),
		analyzerStaleWaiver(),
	}
}

// AnalyzerNames returns the known rule names in order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Reporter collects findings, applying waiver comments. It also caches
// the per-run call graph and effect engine, which guardedby, noalloc and
// purehook share.
type Reporter struct {
	fset     *token.FileSet
	findings []Finding
	// ran records which rules executed this run, so the stalewaiver audit
	// skips waivers whose rule was disabled (their liveness is unknown).
	ran map[string]bool

	cg  *callGraph
	eff *effectEngine
}

// callGraph returns the run's shared module call graph, building it on
// first use.
func (r *Reporter) callGraph(pkgs []*Package) *callGraph {
	if r.cg == nil {
		r.cg = buildCallGraph(pkgs)
	}
	return r.cg
}

// effectEngine returns the run's shared effect-inference result, building
// it on first use.
func (r *Reporter) effectEngine(pkgs []*Package) *effectEngine {
	if r.eff == nil {
		r.eff = inferEffects(pkgs, r.callGraph(pkgs))
	}
	return r.eff
}

// NewReporter returns a reporter resolving positions against fset.
func NewReporter(fset *token.FileSet) *Reporter {
	return &Reporter{fset: fset, ran: map[string]bool{}}
}

// Report files a finding for rule at pos unless the owning package waived it
// there; a suppressing waiver is marked used for the stalewaiver audit.
// pkg may be nil (no waiver lookup — such findings cannot be waived).
func (r *Reporter) Report(pkg *Package, pos token.Pos, rule, format string, args ...any) {
	p := r.fset.Position(pos)
	if pkg != nil {
		if d := pkg.waiverAt(p.Filename, p.Line, rule); d != nil {
			d.used = true
			return
		}
	}
	r.findings = append(r.findings, Finding{
		File: p.Filename,
		Line: p.Line,
		Col:  p.Column,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// reportAt files a finding at an already-resolved position with no waiver
// lookup. The stalewaiver audit uses it: directives carry file/line/col,
// not token.Pos, and audit findings must not be waivable.
func (r *Reporter) reportAt(file string, line, col int, rule, format string, args ...any) {
	r.findings = append(r.findings, Finding{
		File: file,
		Line: line,
		Col:  col,
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Findings returns the collected findings sorted by file, line, column,
// rule and message — a total order, so output is byte-deterministic
// regardless of analyzer scheduling and package load order.
func (r *Reporter) Findings() []Finding {
	out := append([]Finding(nil), r.findings...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return out
}

// Run loads the module rooted at root and runs every analyzer not named in
// disabled. It returns the sorted findings.
func Run(root string, disabled map[string]bool) ([]Finding, error) {
	pkgs, fset, err := LoadModule(root)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(pkgs, fset, disabled), nil
}

// RunAnalyzers runs the enabled analyzers over already-loaded packages.
func RunAnalyzers(pkgs []*Package, fset *token.FileSet, disabled map[string]bool) []Finding {
	r := NewReporter(fset)
	var enabled []*Analyzer
	for _, a := range Analyzers() {
		if disabled[a.Name] {
			continue
		}
		r.ran[a.Name] = true
		enabled = append(enabled, a)
	}
	for _, a := range enabled {
		a.Run(pkgs, r)
	}
	return r.Findings()
}

// funcDisplayName renders a function's name as Type.Method or Func.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver Map[V]
		t = idx.X
	}
	if idl, ok := t.(*ast.IndexListExpr); ok {
		t = idl.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
