package lint

import (
	"go/types"
	"testing"
)

// cgFixture loads a fixture and builds its call graph.
func cgFixture(t *testing.T, files map[string]string) ([]*Package, *callGraph) {
	t.Helper()
	pkgs, _, err := LoadFixture("bulk", files)
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	return pkgs, buildCallGraph(pkgs)
}

// lookupFunc finds a package-scope function by name.
func lookupFunc(t *testing.T, pkgs []*Package, pkg, name string) *types.Func {
	t.Helper()
	for _, p := range pkgs {
		if p.Dir != pkg {
			continue
		}
		if fn, ok := p.Types.Scope().Lookup(name).(*types.Func); ok {
			return fn
		}
	}
	t.Fatalf("function %s not found in %s", name, pkg)
	return nil
}

func TestCallGraphGenericOriginDedup(t *testing.T) {
	// A generic function instantiated at two types is ONE node, and both
	// instantiated call sites resolve to the same origin *types.Func.
	pkgs, cg := cgFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

func id[T any](x T) T { return x }

func Use() (int, string) {
	a := id(1)
	b := id("x")
	return a, b
}
`,
	})
	id := lookupFunc(t, pkgs, "internal/scratch", "id")
	if id.Origin() != id {
		t.Fatalf("scope lookup did not return the origin")
	}
	if cg.nodes[id] == nil {
		t.Fatalf("no node for generic origin id")
	}
	use := cg.nodes[lookupFunc(t, pkgs, "internal/scratch", "Use")]
	if use == nil {
		t.Fatal("no node for Use")
	}
	if len(use.calls) != 2 {
		t.Fatalf("Use has %d static calls, want 2", len(use.calls))
	}
	for i, cs := range use.calls {
		if cs.callee != id {
			t.Errorf("call %d resolves to %v, want the origin of id", i, cs.callee)
		}
	}
	// Exactly one node per declaration: instantiations add nothing.
	if n := len(cg.nodes); n != 2 {
		t.Errorf("call graph has %d nodes, want 2 (id, Use)", n)
	}
}

func TestCallGraphGenericMethodDedup(t *testing.T) {
	pkgs, cg := cgFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

type Box[T any] struct{ v T }

func (b *Box[T]) Get() T { return b.v }

func Use(bi *Box[int], bs *Box[string]) (int, string) {
	return bi.Get(), bs.Get()
}
`,
	})
	use := cg.nodes[lookupFunc(t, pkgs, "internal/scratch", "Use")]
	if use == nil {
		t.Fatal("no node for Use")
	}
	if len(use.calls) != 2 {
		t.Fatalf("Use has %d static calls, want 2", len(use.calls))
	}
	if use.calls[0].callee != use.calls[1].callee {
		t.Errorf("instantiated method calls resolve to distinct callees: %v vs %v",
			use.calls[0].callee, use.calls[1].callee)
	}
	if cg.nodes[use.calls[0].callee] == nil {
		t.Errorf("resolved method callee %v has no node; Origin folding broke", use.calls[0].callee)
	}
}

func TestCallGraphDynamicCallsExcluded(t *testing.T) {
	pkgs, cg := cgFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

type doer interface{ Do() }

func Use(d doer, f func()) {
	d.Do()
	f()
}
`,
	})
	use := cg.nodes[lookupFunc(t, pkgs, "internal/scratch", "Use")]
	if use == nil {
		t.Fatal("no node for Use")
	}
	if len(use.calls) != 0 {
		t.Errorf("dynamic calls were recorded as static: %d", len(use.calls))
	}
}
