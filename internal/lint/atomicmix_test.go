package lint

import "testing"

func TestAtomicMixField(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import "sync/atomic"

type Counter struct {
	n int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Snapshot() int64 {
	return c.n
}
`,
	})
	wantFinding(t, findings, "atomicmix", "internal/scratch/s.go", 14)
}

func TestAtomicMixPackageVar(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import "sync/atomic"

var hits int64

func Record() {
	atomic.AddInt64(&hits, 1)
}

func Reset() {
	hits = 0
}
`,
	})
	wantFinding(t, findings, "atomicmix", "internal/scratch/s.go", 12)
}

func TestAtomicMixCrossPackage(t *testing.T) {
	// The atomic site and the plain access live in different packages: the
	// object set is module-wide, not per-package.
	findings := lintFixture(t, map[string]string{
		"internal/a/a.go": `package a

import "sync/atomic"

var Hits int64

func Record() {
	atomic.AddInt64(&Hits, 1)
}
`,
		"internal/b/b.go": `package b

import "bulk/internal/a"

func Peek() int64 {
	return a.Hits
}
`,
	})
	wantFinding(t, findings, "atomicmix", "internal/b/b.go", 6)
}

func TestAtomicMixAllAtomicClean(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import "sync/atomic"

type Counter struct {
	n int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Snapshot() int64 {
	return atomic.LoadInt64(&c.n)
}
`,
	})
	wantNoFinding(t, findings, "atomicmix")
}

func TestAtomicMixTypedAtomicExempt(t *testing.T) {
	// The typed API encapsulates its word; method calls are not pointer-style
	// atomic accesses and fields of the same struct stay untracked.
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import "sync/atomic"

type Counter struct {
	n atomic.Int64
	m int64
}

func (c *Counter) Inc() {
	c.n.Add(1)
}

func (c *Counter) Plain() int64 {
	c.m++
	return c.m
}
`,
	})
	wantNoFinding(t, findings, "atomicmix")
}

func TestAtomicMixWaiver(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

import "sync/atomic"

var hits int64

func Record() {
	atomic.AddInt64(&hits, 1)
}

func Reset() {
	hits = 0 //bulklint:allow atomicmix init path before the counter is shared
}
`,
	})
	wantNoFinding(t, findings, "atomicmix")
	wantNoFinding(t, findings, "stalewaiver")
}
