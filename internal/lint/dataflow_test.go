package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses a function body for driving flowWalk directly.
func parseBody(t *testing.T, body string) []ast.Stmt {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "flow.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body.List
}

// mergeCall records one merge-hook invocation.
type mergeCall struct {
	branches       int
	mayFallThrough bool
}

// flowTrace runs flowWalk over a body with recording hooks and returns the
// per-statement visit counts and the merge invocations in order.
func flowTrace(t *testing.T, body string) (map[ast.Stmt]int, []mergeCall) {
	t.Helper()
	visits := map[ast.Stmt]int{}
	var merges []mergeCall
	flowWalk(0, parseBody(t, body), flowHooks[int]{
		fork: func(s int) int { return s },
		merge: func(base int, branches []int, mayFallThrough bool) int {
			merges = append(merges, mergeCall{len(branches), mayFallThrough})
			return base
		},
		stmt: func(_ int, s ast.Stmt) { visits[s]++ },
	})
	return visits, merges
}

// visitCounts collapses the per-pointer counts into a sorted multiset of
// counts, which is enough to assert "walked once" vs "walked twice".
func countOf(t *testing.T, visits map[ast.Stmt]int, match func(ast.Stmt) bool) int {
	t.Helper()
	total := -1
	for s, n := range visits {
		if !match(s) {
			continue
		}
		if total >= 0 {
			t.Fatalf("matcher is ambiguous")
		}
		total = n
	}
	if total < 0 {
		t.Fatalf("no visited statement matched")
	}
	return total
}

func isIncDec(s ast.Stmt) bool { _, ok := s.(*ast.IncDecStmt); return ok }

func TestFlowWalkForBodyWalkedTwice(t *testing.T) {
	// Loop bodies are walked twice (bounded fixpoint): facts created in
	// iteration k reach uses in iteration k+1.
	visits, merges := flowTrace(t, `
	x := 0
	for i := 0; i < 10; i = i + 1 {
		x++
	}
	_ = x`)
	if n := countOf(t, visits, isIncDec); n != 2 {
		t.Errorf("for-loop body statement visited %d times, want 2", n)
	}
	// Two merges — the iteration join feeding the second walk and the loop
	// exit — and both may fall through (zero-iteration loops skip the body).
	for i, m := range merges {
		if m.branches != 1 || !m.mayFallThrough {
			t.Errorf("merge %d = %+v, want {1 true}", i, m)
		}
	}
	if len(merges) != 2 {
		t.Errorf("got %d merges, want 2 (iteration join + exit join)", len(merges))
	}
}

func TestFlowWalkRangeBodyWalkedTwice(t *testing.T) {
	visits, _ := flowTrace(t, `
	x := 0
	for range []int{1, 2} {
		x++
	}
	_ = x`)
	if n := countOf(t, visits, isIncDec); n != 2 {
		t.Errorf("range body statement visited %d times, want 2", n)
	}
}

func TestFlowWalkIfElseMerge(t *testing.T) {
	_, merges := flowTrace(t, `
	x := 0
	if x > 0 {
		x++
	} else {
		x--
	}`)
	if len(merges) != 1 {
		t.Fatalf("got %d merges, want 1", len(merges))
	}
	if m := merges[0]; m.branches != 2 || m.mayFallThrough {
		t.Errorf("if/else merge = %+v, want {2 false}", m)
	}
}

func TestFlowWalkIfWithoutElseMayFallThrough(t *testing.T) {
	_, merges := flowTrace(t, `
	x := 0
	if x > 0 {
		x++
	}`)
	if len(merges) != 1 {
		t.Fatalf("got %d merges, want 1", len(merges))
	}
	if m := merges[0]; m.branches != 1 || !m.mayFallThrough {
		t.Errorf("if merge = %+v, want {1 true}", m)
	}
}

func TestFlowWalkSwitchDefault(t *testing.T) {
	_, merges := flowTrace(t, `
	x := 0
	switch x {
	case 1:
		x++
	case 2:
		x--
	default:
		x = 3
	}`)
	if len(merges) != 1 {
		t.Fatalf("got %d merges, want 1", len(merges))
	}
	// With a default, one clause always runs: no fall-through path.
	if m := merges[0]; m.branches != 3 || m.mayFallThrough {
		t.Errorf("switch merge = %+v, want {3 false}", m)
	}
}

func TestFlowWalkSwitchNoDefault(t *testing.T) {
	_, merges := flowTrace(t, `
	x := 0
	switch x {
	case 1:
		x++
	}`)
	if m := merges[0]; m.branches != 1 || !m.mayFallThrough {
		t.Errorf("switch merge = %+v, want {1 true}", m)
	}
}

func TestFlowWalkSelectCommStatementVisited(t *testing.T) {
	// The comm statement of a select clause executes on that clause's path
	// and must reach the stmt hook.
	visits, merges := flowTrace(t, `
	c := make(chan int, 1)
	select {
	case c <- 1:
	default:
	}`)
	sends := 0
	for s, n := range visits {
		if _, ok := s.(*ast.SendStmt); ok {
			sends += n
		}
	}
	if sends != 1 {
		t.Errorf("select comm send visited %d times, want 1", sends)
	}
	if m := merges[0]; m.branches != 2 || m.mayFallThrough {
		t.Errorf("select merge = %+v, want {2 false}", m)
	}
}

func TestFlowWalkNestedLoopInnerWalkedFourTimes(t *testing.T) {
	// Twice per enclosing walk: the inner body runs 2×2 times.
	visits, _ := flowTrace(t, `
	x := 0
	for range []int{1} {
		for range []int{1} {
			x++
		}
	}
	_ = x`)
	if n := countOf(t, visits, isIncDec); n != 4 {
		t.Errorf("nested loop body visited %d times, want 4", n)
	}
}
