package lint

import (
	"go/ast"
	"go/types"
)

// This file builds the module-wide static call graph the flow-sensitive
// analyses (guardedby lockset, noalloc) share. Only statically resolvable
// calls appear: direct function calls, method calls on concrete receivers,
// and qualified package calls. Interface-method calls and calls through
// func-typed values are dynamic and are left to each analysis to treat
// conservatively at the call site.

// callSite is one statically resolved call inside a function body.
type callSite struct {
	call   *ast.CallExpr
	callee *types.Func // canonical (generic origin) callee
}

// funcNode is one function declared in the module with a body.
type funcNode struct {
	fn    *types.Func
	pkg   *Package
	decl  *ast.FuncDecl
	calls []*callSite // in source order
}

// callGraph maps every module-declared function to its node. Keys are
// canonical: instantiated generic functions and methods are folded into
// their origin via (*types.Func).Origin.
type callGraph struct {
	nodes map[*types.Func]*funcNode
}

// buildCallGraph indexes every FuncDecl in the loaded packages and records
// the statically resolvable calls in each body.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{nodes: map[*types.Func]*funcNode{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				cg.nodes[fn.Origin()] = &funcNode{fn: fn.Origin(), pkg: pkg, decl: fd}
			}
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := cg.nodes[fn.Origin()]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := staticCallee(pkg, call); callee != nil {
						node.calls = append(node.calls, &callSite{call: call, callee: callee})
					}
					return true
				})
			}
		}
	}
	return cg
}

// staticCallee resolves the canonical *types.Func a call targets, or nil
// for builtins, type conversions, and dynamic (interface / func-value)
// calls.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil // field of func type — dynamic
			}
			if recvIsAbstract(sel.Recv()) {
				return nil // interface or type-parameter method — dynamic
			}
			return fn.Origin()
		}
		// Qualified call: pkg.Func.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				return fn.Origin()
			}
		}
	case *ast.IndexListExpr:
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				return fn.Origin()
			}
		}
	}
	return nil
}

// recvIsAbstract reports whether a method selection's receiver is an
// interface or a type parameter, i.e. the call cannot be resolved to one
// concrete body.
func recvIsAbstract(t types.Type) bool {
	if t == nil {
		return true
	}
	if _, ok := t.(*types.TypeParam); ok {
		return true
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.(*types.TypeParam); ok {
		return true
	}
	_, isIface := t.Underlying().(*types.Interface)
	return isIface
}
