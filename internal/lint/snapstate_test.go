package lint

import "testing"

// TestSnapStateDroppedField is the PR's negative mutation fixture #1: a
// field deliberately dropped from Restore must yield exactly one finding
// naming the capture method (the witness line is the method declaration).
func TestSnapStateDroppedField(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
type Sys struct {
	clock int
	buf   []int
}

type Snap struct {
	clock int
	buf   []int
}

//bulklint:captures snapshot
func (s *Sys) Snapshot() *Snap {
	return &Snap{clock: s.clock, buf: append([]int(nil), s.buf...)}
}

//bulklint:captures restore
func (s *Sys) Restore(sn *Snap) {
	s.buf = append(s.buf[:0], sn.buf...)
}
`,
	})
	wantFinding(t, findings, "snapstate", "internal/scratch/s.go", 20)
}

// TestSnapStateShallowAlias is negative mutation fixture #2: a slice field
// restored by plain assignment — aliasing live state against the snapshot
// — must yield exactly one finding at the assignment line.
func TestSnapStateShallowAlias(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
type Sys struct {
	clock int
	buf   []int
}

type Snap struct {
	clock int
	buf   []int
}

//bulklint:captures restore
func (s *Sys) Restore(sn *Snap) {
	s.clock = sn.clock
	s.buf = sn.buf
}
`,
	})
	wantFinding(t, findings, "snapstate", "internal/scratch/s.go", 17)
}

func TestSnapStateCleanDeepCopy(t *testing.T) {
	// Full coverage with append/copy witnesses: no findings, no stale
	// directives.
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
type Sys struct {
	clock int
	buf   []int
	m     map[int]int
}

//bulklint:captures snapshot Sys
//bulklint:captures restore Sys
func Roundtrip(dst, src *Sys) {
	dst.clock = src.clock
	dst.buf = append(dst.buf[:0], src.buf...)
	if dst.m == nil {
		dst.m = make(map[int]int, len(src.m))
	}
	for k, v := range src.m {
		dst.m[k] = v
	}
}
`,
	})
	wantNoFinding(t, findings, "snapstate")
	wantNoFinding(t, findings, "stalewaiver")
}

func TestSnapStateHelperCoverage(t *testing.T) {
	// A field handled inside a statically-resolved helper counts: coverage
	// flows through the module call graph.
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
type Sys struct {
	clock int
	buf   []int
}

func copyBuf(dst, src *Sys) {
	dst.buf = append(dst.buf[:0], src.buf...)
}

//bulklint:captures copyfrom
func (s *Sys) CopyFrom(o *Sys) {
	s.clock = o.clock
	copyBuf(s, o)
}
`,
	})
	wantNoFinding(t, findings, "snapstate")
	wantNoFinding(t, findings, "stalewaiver")
}

func TestSnapStateIgnoreWaiver(t *testing.T) {
	// An ignored field that would otherwise fail is waived, and the waiver
	// is live (not a stalewaiver finding).
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
type Sys struct {
	clock int
	//bulklint:snapstate-ignore scratch rebuilt lazily on first use
	scratch []int
}

//bulklint:captures restore
func (s *Sys) Restore(clock int) {
	s.clock = clock
}
`,
	})
	wantNoFinding(t, findings, "snapstate")
	wantNoFinding(t, findings, "stalewaiver")
}

func TestSnapStateStaleIgnore(t *testing.T) {
	// An ignore whose field is in fact fully covered is a stalewaiver
	// finding — the audit extends to snapstate-ignore.
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
type Sys struct {
	//bulklint:snapstate-ignore clock not captured (stale: it is)
	clock int
}

//bulklint:captures restore
func (s *Sys) Restore(clock int) {
	s.clock = clock
}
`,
	})
	wantNoFinding(t, findings, "snapstate")
	wantFinding(t, findings, "stalewaiver", "internal/scratch/s.go", 5)
}

func TestSnapStateResetKindNeedsNoWitness(t *testing.T) {
	// A reset method rewinds to a zero value: whole-struct assignment
	// covers every field and pointer fields demand no deep-copy witness.
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
type Out struct {
	err  error
	log  []string
	code int
}

//bulklint:captures reset
func (o *Out) Reset() {
	*o = Out{}
}
`,
	})
	wantNoFinding(t, findings, "snapstate")
	wantNoFinding(t, findings, "stalewaiver")
}

func TestSnapStateNoCapturesMethod(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
type Sys struct {
	clock int
}
`,
	})
	wantFinding(t, findings, "snapstate", "internal/scratch/s.go", 4)
}

func TestSnapStateUnknownKindAndField(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
type Sys struct {
	//bulklint:snapstate-ignore nosuch never existed
	clock int
}

//bulklint:captures deepfreeze
//bulklint:captures restore
func (s *Sys) Restore(clock int) {
	s.clock = clock
}
`,
	})
	var got []Finding
	for _, f := range findings {
		if f.Rule == "snapstate" {
			got = append(got, f)
		}
	}
	if len(got) != 2 {
		t.Fatalf("want 2 snapstate findings (unknown kind + unknown field), got %d: %v", len(got), got)
	}
	wantNoFinding(t, findings, "stalewaiver")
}

func TestSnapStateUnattachedAnnotation(t *testing.T) {
	findings := lintFixture(t, map[string]string{
		"internal/scratch/s.go": `package scratch

//bulklint:snapstate
var notAStruct int
`,
	})
	wantFinding(t, findings, "stalewaiver", "internal/scratch/s.go", 3)
}
