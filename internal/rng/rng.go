// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Determinism matters here more than statistical quality: every
// disambiguation scheme (Eager, Lazy, Bulk) must observe exactly the same
// logical workload, so workload generation must be reproducible from a seed
// and independent of Go's global math/rand state. The generator is
// xoshiro256**, seeded via splitmix64, following the reference constructions
// by Blackman and Vigna.
package rng

// Rand is a deterministic random number generator. The zero value is not
// valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	// splitmix64 seeding, as recommended for xoshiro.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A state of all zeros would be a fixed point; splitmix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Fork returns a new generator derived from r's stream. It is used to give
// each thread or task its own independent stream so that the amount of
// randomness one task consumes does not perturb the others.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the high 32 bits of the next value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n") //bulklint:invariant mirrors the documented math/rand.Intn contract
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a value in [0, n) using Lemire's multiply-shift rejection
// method to avoid modulo bias. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n") //bulklint:invariant an empty range has no uniform value to return
	}
	// For simulator purposes a simple threshold rejection is plenty.
	threshold := -n % n // (2^64 - n) % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n), Fisher–Yates shuffled.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1): the number of trials until first success with p = 1/m, i.e. a
// positive integer. Used for footprint and run-length sampling.
func (r *Rand) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1.0 / m
	// Inverse transform sampling.
	u := r.Float64()
	if u >= 1 {
		u = 0.9999999999999999
	}
	// ceil(ln(1-u)/ln(1-p))
	n := 1
	prob := p
	cum := p
	for cum < u && n < 1<<20 {
		prob *= 1 - p
		cum += prob
		n++
	}
	return n
}

// NormalishInt returns a sample around mean with +-spread, clamped to be at
// least min. It uses the average of two uniforms (triangular distribution),
// which is symmetric and cheap; exact distribution shape does not matter for
// the workloads, only mean and spread.
func (r *Rand) NormalishInt(mean, spread, min int) int {
	if spread <= 0 {
		if mean < min {
			return min
		}
		return mean
	}
	d := (r.Float64() + r.Float64() - 1) * float64(spread)
	v := mean + int(d)
	if v < min {
		return min
	}
	return v
}
