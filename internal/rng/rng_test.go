package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(123)
	b := New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(7)
	f1 := a.Fork()
	// Redo from the same seed, consume a different amount from the fork,
	// and check the parent stream is unaffected.
	b := New(7)
	f2 := b.Fork()
	_ = f2.Uint64()
	_ = f2.Uint64()
	if f1.Uint64() != New(7).Fork().Uint64() {
		t.Fatal("fork must be a pure function of parent state")
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("consuming from a fork must not perturb the parent")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(42)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(5)
	if r.Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) must be true")
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / 10000
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("Bool(0.3) true fraction %.3f too far from 0.3", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(3)
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		v := r.Geometric(10)
		if v < 1 {
			t.Fatalf("Geometric must return >= 1, got %d", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-10) > 1 {
		t.Fatalf("Geometric(10) sample mean %.2f too far from 10", mean)
	}
	if r.Geometric(0.5) != 1 {
		t.Fatal("Geometric(m<=1) must return 1")
	}
}

func TestNormalishInt(t *testing.T) {
	r := New(8)
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.NormalishInt(100, 20, 1)
		if v < 1 {
			t.Fatalf("NormalishInt below min: %d", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("NormalishInt mean %.2f too far from 100", mean)
	}
	if got := r.NormalishInt(5, 0, 10); got != 10 {
		t.Fatalf("NormalishInt with mean<min must clamp to min, got %d", got)
	}
}

func TestUint64nThreshold(t *testing.T) {
	r := New(12)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(3); v >= 3 {
			t.Fatalf("Uint64n(3) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) must panic")
		}
	}()
	r.Uint64n(0)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}
