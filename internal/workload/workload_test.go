package workload

import (
	"math"
	"testing"

	"bulk/internal/trace"
)

func TestGenerateTMDeterministic(t *testing.T) {
	p, ok := TMProfileByName("cb")
	if !ok {
		t.Fatal("cb profile missing")
	}
	a := GenerateTM(p, 1)
	b := GenerateTM(p, 1)
	if len(a.Threads) != len(b.Threads) {
		t.Fatal("thread counts differ")
	}
	for ti := range a.Threads {
		sa, sb := a.Threads[ti].Segments, b.Threads[ti].Segments
		if len(sa) != len(sb) {
			t.Fatalf("thread %d: segment counts differ", ti)
		}
		for si := range sa {
			if len(sa[si].Ops) != len(sb[si].Ops) {
				t.Fatalf("thread %d seg %d: op counts differ", ti, si)
			}
			for oi := range sa[si].Ops {
				if sa[si].Ops[oi] != sb[si].Ops[oi] {
					t.Fatalf("thread %d seg %d op %d differs", ti, si, oi)
				}
			}
		}
	}
	c := GenerateTM(p, 2)
	if len(c.Threads[0].Segments[1].Ops) == len(a.Threads[0].Segments[1].Ops) &&
		c.Threads[0].Segments[1].Ops[0] == a.Threads[0].Segments[1].Ops[0] {
		// Not a hard guarantee, but wildly unlikely for differing seeds.
		t.Log("warning: different seeds produced an identical first op")
	}
}

func TestTMFootprintsMatchTable7(t *testing.T) {
	// Table 7 read/write set targets in lines, within a ±20% band (the
	// generator is stochastic and aims at the mean).
	targets := map[string][2]float64{
		"cb": {73.6, 26.9}, "jgrt": {67.1, 22.1}, "lu": {81.7, 27.3},
		"mc": {51.6, 17.6}, "moldyn": {70.2, 25.1}, "series": {86.9, 25.9},
		"sjbb2k": {41.6, 11.2},
	}
	for _, p := range TMProfiles() {
		w := GenerateTM(p, 7)
		var rd, wr float64
		n := 0
		for _, th := range w.Threads {
			for _, seg := range th.Segments {
				if !seg.Txn {
					continue
				}
				fp := trace.FootprintOf(seg.Ops, WordsPerLine)
				rd += float64(fp.ReadLines)
				wr += float64(fp.WriteLines)
				n++
			}
		}
		rd /= float64(n)
		wr /= float64(n)
		want := targets[p.Name]
		if math.Abs(rd-want[0])/want[0] > 0.2 {
			t.Errorf("%s: mean read set %.1f lines, want ≈%.1f", p.Name, rd, want[0])
		}
		if math.Abs(wr-want[1])/want[1] > 0.2 {
			t.Errorf("%s: mean write set %.1f lines, want ≈%.1f", p.Name, wr, want[1])
		}
		// Read sets must exceed write sets, as the paper observes.
		if rd <= wr {
			t.Errorf("%s: read set %.1f not larger than write set %.1f", p.Name, rd, wr)
		}
	}
}

func TestTLSFootprintsMatchTable6(t *testing.T) {
	targets := map[string][2]float64{
		"bzip2": {30.2, 4.9}, "crafty": {109.0, 23.2}, "gap": {42.4, 13.4},
		"gzip": {14.3, 4.8}, "mcf": {12.3, 0.7}, "parser": {29.6, 7.1},
		"twolf": {41.1, 6.4}, "vortex": {34.7, 23.5}, "vpr": {43.1, 8.7},
	}
	for _, p := range TLSProfiles() {
		w := GenerateTLS(p, 7)
		var rd, wr float64
		for _, task := range w.Tasks {
			fp := trace.FootprintOf(task.Ops, WordsPerLine)
			rd += float64(fp.ReadWords)
			wr += float64(fp.WriteWords)
		}
		rd /= float64(len(w.Tasks))
		wr /= float64(len(w.Tasks))
		want := targets[p.Name]
		// Word footprints have a wider band: tiny write sets (mcf: 0.7
		// words) cannot be matched closer than the nearest integer.
		if math.Abs(rd-want[0]) > want[0]*0.25+1 {
			t.Errorf("%s: mean read set %.1f words, want ≈%.1f", p.Name, rd, want[0])
		}
		if math.Abs(wr-want[1]) > want[1]*0.25+1 {
			t.Errorf("%s: mean write set %.1f words, want ≈%.1f", p.Name, wr, want[1])
		}
	}
}

func TestTLSSpawnStructure(t *testing.T) {
	p, _ := TLSProfileByName("crafty")
	w := GenerateTLS(p, 3)
	if len(w.Tasks) != p.Tasks {
		t.Fatalf("got %d tasks, want %d", len(w.Tasks), p.Tasks)
	}
	for i, task := range w.Tasks {
		if len(task.Ops) == 0 {
			t.Fatalf("task %d is empty", i)
		}
		if task.SpawnIndex < 0 || task.SpawnIndex >= len(task.Ops) {
			t.Fatalf("task %d spawn index %d out of range [0,%d)", i, task.SpawnIndex, len(task.Ops))
		}
	}
}

func TestTLSLiveInsComeFromParentPreSpawnWrites(t *testing.T) {
	p, _ := TLSProfileByName("crafty")
	p.TrueDepProb = 0 // isolate live-ins
	p.LiveInProb = 1  // every task consumes them
	w := GenerateTLS(p, 11)
	for i := 1; i < len(w.Tasks); i++ {
		parent := w.Tasks[i-1]
		child := w.Tasks[i]
		preWrites := map[uint64]bool{}
		for j, op := range parent.Ops {
			if op.Kind != trace.Read && j <= parent.SpawnIndex {
				preWrites[op.Addr] = true
			}
		}
		// The first min(LiveIns, |preWrites|) reads of the child must be
		// parent pre-spawn writes.
		want := p.LiveIns
		if len(preWrites) < want {
			want = len(preWrites)
		}
		checked := 0
		for _, op := range child.Ops {
			if op.Kind != trace.Read || checked >= want {
				break
			}
			if !preWrites[op.Addr] {
				t.Fatalf("task %d live-in read %#x is not a parent pre-spawn write", i, op.Addr)
			}
			checked++
		}
	}
}

func TestTMSegmentStructure(t *testing.T) {
	for _, p := range TMProfiles() {
		w := GenerateTM(p, 5)
		if len(w.Threads) != p.Threads {
			t.Fatalf("%s: %d threads, want %d", p.Name, len(w.Threads), p.Threads)
		}
		txns := 0
		for _, th := range w.Threads {
			for _, seg := range th.Segments {
				if seg.Txn {
					txns++
					if len(seg.Sections) < 1 || seg.Sections[0] != 0 {
						t.Fatalf("%s: transaction sections must start at 0: %v", p.Name, seg.Sections)
					}
					for i := 1; i < len(seg.Sections); i++ {
						if seg.Sections[i] <= seg.Sections[i-1] || seg.Sections[i] >= len(seg.Ops) {
							t.Fatalf("%s: bad section boundaries %v (len %d)", p.Name, seg.Sections, len(seg.Ops))
						}
					}
					if len(seg.Ops) == 0 {
						t.Fatalf("%s: empty transaction", p.Name)
					}
				}
			}
		}
		if txns != p.Threads*p.TxnsPerThread {
			t.Fatalf("%s: %d transactions, want %d", p.Name, txns, p.Threads*p.TxnsPerThread)
		}
		if got := w.Transactions(); got != txns {
			t.Fatalf("Transactions()=%d, want %d", got, txns)
		}
	}
}

func TestHotRegionDisjointFromShared(t *testing.T) {
	// sjbb2k's RMW hot lines must not collide with the shared region
	// (lines [tmHotBase, tmHotBase+SharedLines)).
	p, _ := TMProfileByName("sjbb2k")
	if p.HotLines >= tmHotBase {
		t.Fatalf("hot region (%d lines) overlaps shared region base %d", p.HotLines, tmHotBase)
	}
	w := GenerateTM(p, 1)
	sawHot := false
	for _, th := range w.Threads {
		for _, seg := range th.Segments {
			if !seg.Txn {
				continue
			}
			for _, op := range seg.Ops {
				if LineOf(op.Addr) < uint64(p.HotLines) {
					sawHot = true
				}
			}
		}
	}
	if !sawHot {
		t.Fatal("sjbb2k must actually touch the hot RMW region")
	}
}

func TestProfileLookups(t *testing.T) {
	if _, ok := TMProfileByName("nope"); ok {
		t.Fatal("unknown TM profile must not resolve")
	}
	if _, ok := TLSProfileByName("nope"); ok {
		t.Fatal("unknown TLS profile must not resolve")
	}
	if len(TMProfiles()) != 7 {
		t.Fatalf("want 7 TM profiles, got %d", len(TMProfiles()))
	}
	if len(TLSProfiles()) != 9 {
		t.Fatalf("want 9 TLS profiles, got %d", len(TLSProfiles()))
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(15) != 0 || LineOf(16) != 1 || LineOf(33) != 2 {
		t.Fatal("LineOf wrong")
	}
}
