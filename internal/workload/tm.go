package workload

import (
	"bulk/internal/det"
	"bulk/internal/rng"
	"bulk/internal/trace"
)

// TMProfile parameterizes the synthetic stand-in for one of the paper's TM
// applications (Table 4). The footprint targets come from Table 7; the
// contention structure is chosen so the squash behaviour and the Eager/Lazy
// contrast (Figure 11, Figure 12) have the paper's shape.
type TMProfile struct {
	Name    string
	Threads int
	// TxnsPerThread is the number of transactions each thread executes.
	TxnsPerThread int
	// ReadLines/WriteLines are the target mean distinct read and write
	// footprints per transaction, in cache lines (Table 7).
	ReadLines  int
	WriteLines int
	// SharedLines is the size of the shared region (in lines) that
	// transactions contend on.
	SharedLines int
	// SharedReads/SharedWrites are how many of a transaction's distinct
	// lines fall in the shared region.
	SharedReads  int
	SharedWrites int
	// HotRMW is the number of read-modify-write accesses each transaction
	// performs on a tiny HotLines-sized region. This is the pattern of
	// Figure 12(a) that starves Eager schemes; sjbb2k has it, the Java
	// Grande kernels mostly do not.
	HotRMW   int
	HotLines int
	// DepFrac is the fraction of writes that are WriteDep (flow-dependent
	// on the last read), threading read values into memory.
	DepFrac float64
	// NonTxnOps is the length of the non-transactional stretch between
	// transactions (the paper's TM model supports non-transactional code).
	NonTxnOps int
	// NonTxnSharedFrac is the fraction of non-transactional accesses that
	// touch the shared region.
	NonTxnSharedFrac float64
	// NestProb is the probability a transaction is a closed nest of 2–3
	// sections (Section 6.2.1).
	NestProb float64
	// ThinkBase/ThinkSpread shape per-op compute time.
	ThinkBase, ThinkSpread int
	// ReuseProb is the probability a private line is reused from the
	// thread's recent working set rather than freshly allocated.
	ReuseProb float64
}

// TMProfiles returns the seven application profiles of Table 4, calibrated
// to the Table 7 footprints:
//
//	app      RdSet(L) WrSet(L)
//	cb         73.6     26.9
//	jgrt       67.1     22.1
//	lu         81.7     27.3
//	mc         51.6     17.6
//	moldyn     70.2     25.1
//	series     86.9     25.9
//	sjbb2k     41.6     11.2
func TMProfiles() []TMProfile {
	base := TMProfile{
		Threads:       8,
		TxnsPerThread: 30,
		// The Java Grande kernels are data-parallel and conflict rarely;
		// most shared accesses hit disjoint portions of a large shared
		// structure. sjbb2k overrides this with its hot RMW records.
		SharedLines:  768,
		SharedReads:  5,
		SharedWrites: 2,
		DepFrac:      0.3,
		NonTxnOps:    24,
		ThinkBase:    1,
		ThinkSpread:  3,
		ReuseProb:    0.5,
	}
	mk := func(name string, rd, wr int, f func(*TMProfile)) TMProfile {
		p := base
		p.Name = name
		p.ReadLines = rd
		p.WriteLines = wr
		if f != nil {
			f(&p)
		}
		return p
	}
	return []TMProfile{
		mk("cb", 74, 27, func(p *TMProfile) { p.SharedReads = 7; p.SharedWrites = 3 }),
		mk("jgrt", 67, 22, func(p *TMProfile) { p.SharedReads = 6; p.SharedWrites = 2 }),
		mk("lu", 82, 27, func(p *TMProfile) { p.SharedReads = 5; p.SharedWrites = 2; p.NestProb = 0.2 }),
		mk("mc", 52, 18, func(p *TMProfile) { p.SharedReads = 4; p.SharedWrites = 2; p.NonTxnOps = 48 }),
		mk("moldyn", 70, 25, func(p *TMProfile) { p.SharedReads = 5; p.SharedWrites = 2; p.NestProb = 0.15 }),
		mk("series", 87, 26, func(p *TMProfile) { p.SharedReads = 4; p.SharedWrites = 2 }),
		mk("sjbb2k", 42, 11, func(p *TMProfile) {
			p.SharedReads = 4
			p.SharedWrites = 2
			p.HotRMW = 2
			p.HotLines = 6
			p.NonTxnOps = 36
			p.NestProb = 0.1
		}),
	}
}

// TMProfileByName returns the named profile.
func TMProfileByName(name string) (TMProfile, bool) {
	for _, p := range TMProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return TMProfile{}, false
}

// Address-space layout (word addresses, within the 26-bit line space of
// Table 5):
//
//	lines [0, HotLines)                    tiny RMW-contended region
//	lines [hotBase, hotBase+SharedLines)   shared region
//	lines [privBase + t*privHeap, ...)     per-thread private heaps
//
// The private heaps are deliberately wide (2^18 lines per thread): real
// Java heaps spread entropy across many address bits, and the signature
// chunks C2..Cn rely on that entropy — a dense heap would make distinct
// addresses alias in the high chunks and inflate false positives far beyond
// what the paper's applications see.
// The layout packs all entropy into address bits 0..20 — the bits the
// paper's TM permutation actually feeds into S14's chunks (C1 reads bits
// {0-6,9,11,17}, C2 reads {7,8,10,12,13,15,16,18,19,20}; bits 21..25 are
// not consumed). Private lines carry a discriminator in each chunk — bit 9
// (C1) and bit 20 (C2) set, both clear in shared lines — and the thread id
// in bits 17..19 (split across the chunks). Consequently private↔shared
// pairs are disjoint in V1, private↔private pairs of different threads are
// disjoint in V1 or V2, and only shared↔shared pairs can alias. This is
// the address-space/permutation co-design the paper describes as "good
// permutations group together bits that vary more"; without it any
// Bloom-style signature would alias far beyond what the paper's
// applications see.
const (
	tmHotBase  = 64
	tmPrivBase = 1 << 20 // bit 20: private marker seen by chunk C2
	tmPrivMark = 1 << 9  // bit 9: private marker seen by chunk C1
)

type tmGen struct {
	p   TMProfile
	tid int
	r   *rng.Rand
	// recent private lines for working-set reuse
	recent []uint64
}

// TMPrivateHeapLine packs a thread-private heap line: bits 0..8 and 10..16
// carry the 16 bits of heap entropy, bit 9 and bit 20 are the private
// markers, bits 17..19 the thread id.
func TMPrivateHeapLine(tid int, entropy uint64) uint64 {
	entropy &= (1 << 16) - 1
	return tmPrivBase + tmPrivMark +
		uint64(tid&7)<<17 +
		(entropy>>9)<<10 +
		(entropy & 0x1ff)
}

// TMSharedObjectLine returns shared object i's line: heap-scattered with
// entropy in bits 0..8, 10..16 and 17..19, private marker bits clear.
func TMSharedObjectLine(i int) uint64 {
	s := Scatter(i, 1<<19)
	return (s & 0x1ff) | (s>>9&0x7f)<<10 | (s >> 16 << 17)
}

func (g *tmGen) privateLine() uint64 {
	if len(g.recent) > 8 && g.r.Bool(g.p.ReuseProb) {
		return g.recent[g.r.Intn(len(g.recent))]
	}
	l := TMPrivateHeapLine(g.tid, g.r.Uint64n(1<<16))
	g.recent = append(g.recent, l)
	if len(g.recent) > 256 {
		g.recent = g.recent[len(g.recent)-256:]
	}
	return l
}

// sharedLine picks one of the SharedLines shared objects.
func (g *tmGen) sharedLine() uint64 {
	return TMSharedObjectLine(g.r.Intn(g.p.SharedLines))
}

func (g *tmGen) hotLine() uint64 {
	return uint64(g.r.Intn(g.p.HotLines))
}

func (g *tmGen) wordIn(line uint64) uint64 {
	return line*WordsPerLine + uint64(g.r.Intn(WordsPerLine))
}

func (g *tmGen) think() uint16 {
	t := g.p.ThinkBase
	if g.p.ThinkSpread > 0 {
		t += g.r.Intn(g.p.ThinkSpread)
	}
	return uint16(t)
}

// transaction builds one transaction's op stream.
func (g *tmGen) transaction() TMSegment {
	p := g.p
	nR := g.r.NormalishInt(p.ReadLines, p.ReadLines/4, 1)
	nW := g.r.NormalishInt(p.WriteLines, p.WriteLines/4, 1)

	// Choose the distinct lines.
	readLines := make([]uint64, 0, nR)
	writeLines := make([]uint64, 0, nW)
	for i := 0; i < nR; i++ {
		if i < p.SharedReads {
			readLines = append(readLines, g.sharedLine())
		} else {
			readLines = append(readLines, g.privateLine())
		}
	}
	for i := 0; i < nW; i++ {
		if i < p.SharedWrites {
			writeLines = append(writeLines, g.sharedLine())
		} else {
			writeLines = append(writeLines, g.privateLine())
		}
	}

	// Emit ops: reads weighted toward the front (transactions read their
	// inputs, compute, write results), writes toward the back, lightly
	// shuffled.
	var ops []trace.Op
	emitRead := func(line uint64) {
		ops = append(ops, trace.Op{Kind: trace.Read, Addr: g.wordIn(line), Think: g.think()})
	}
	emitWrite := func(line uint64) {
		k := trace.Write
		if g.r.Bool(p.DepFrac) {
			k = trace.WriteDep
		}
		ops = append(ops, trace.Op{Kind: k, Addr: g.wordIn(line), Think: g.think()})
	}

	// Hot read-modify-writes first (lock-like counters at txn entry).
	for i := 0; i < p.HotRMW; i++ {
		l := g.hotLine()
		w := g.wordIn(l)
		ops = append(ops, trace.Op{Kind: trace.Read, Addr: w, Think: g.think()})
		ops = append(ops, trace.Op{Kind: trace.WriteDep, Addr: w, Think: g.think()})
	}

	ri, wi := 0, 0
	for ri < len(readLines) || wi < len(writeLines) {
		// Probability of issuing a read next, proportional to remaining.
		remR := len(readLines) - ri
		remW := len(writeLines) - wi
		if remW == 0 || (remR > 0 && g.r.Intn(remR+remW) < remR) {
			emitRead(readLines[ri])
			ri++
		} else {
			emitWrite(writeLines[wi])
			wi++
		}
	}

	seg := TMSegment{Txn: true, Ops: ops, Sections: []int{0}}
	if p.NestProb > 0 && g.r.Bool(p.NestProb) && len(ops) >= 9 {
		// Split into 2–3 nested sections at random interior boundaries.
		n := 2 + g.r.Intn(2)
		bounds := map[int]bool{}
		for len(bounds) < n-1 {
			bounds[1+g.r.Intn(len(ops)-1)] = true
		}
		seg.Sections = append(seg.Sections, det.SortedKeys(bounds)...)
	}
	return seg
}

// nonTxn builds the non-transactional stretch between transactions.
// Non-transactional code uses only plain reads and writes (no WriteDep):
// its accesses are unordered with respect to concurrent commits, so
// flow-dependent values would make the serializability oracle ambiguous.
func (g *tmGen) nonTxn() TMSegment {
	p := g.p
	n := g.r.NormalishInt(p.NonTxnOps, p.NonTxnOps/3, 0)
	var ops []trace.Op
	for i := 0; i < n; i++ {
		var line uint64
		if g.r.Bool(p.NonTxnSharedFrac) {
			line = g.sharedLine()
		} else {
			line = g.privateLine()
		}
		k := trace.Read
		// Non-transactional stretches are read-mostly: the lock-based
		// originals did their updates inside the critical sections that
		// became transactions. Heavy non-transactional writing would also
		// litter the cache with non-speculative dirty lines and inflate
		// the Set Restriction's safe writebacks far beyond Table 7.
		if g.r.Bool(0.1) {
			k = trace.Write
		}
		ops = append(ops, trace.Op{Kind: k, Addr: g.wordIn(line), Think: g.think()})
	}
	return TMSegment{Txn: false, Ops: ops}
}

// GenerateTM builds the workload for a profile. The same (profile, seed)
// always yields the same workload.
func GenerateTM(p TMProfile, seed uint64) *TMWorkload {
	root := rng.New(seed ^ hashName(p.Name))
	w := &TMWorkload{Name: p.Name, Threads: make([]TMThread, p.Threads)}
	for t := 0; t < p.Threads; t++ {
		g := &tmGen{p: p, tid: t, r: root.Fork()}
		var segs []TMSegment
		for i := 0; i < p.TxnsPerThread; i++ {
			if p.NonTxnOps > 0 {
				segs = append(segs, g.nonTxn())
			}
			segs = append(segs, g.transaction())
		}
		w.Threads[t].Segments = segs
	}
	return w
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
