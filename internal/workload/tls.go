package workload

import (
	"bulk/internal/rng"
	"bulk/internal/trace"
)

// TLSProfile parameterizes the synthetic stand-in for one SPECint2000
// application compiled into speculative tasks. Footprint targets come from
// Table 6; the parent/child sharing structure implements the paper's
// observation (Section 6.3) that a child often reads live-ins its parent
// produced before the spawn.
type TLSProfile struct {
	Name  string
	Tasks int
	// ReadWords/WriteWords are the target mean distinct footprints per
	// task, in words (Table 6).
	ReadWords  int
	WriteWords int
	// LiveIns is how many of a task's reads come from its parent's
	// pre-spawn writes. These are the reads that Partial Overlap saves
	// from squashing.
	LiveIns int
	// LiveInProb is the probability a task consumes live-ins at all
	// (fine-grain sharing is common between adjacent tasks, not
	// universal).
	LiveInProb float64
	// TrueDepProb is the probability a task reads data its predecessor
	// writes after the spawn — a genuine cross-task dependence that must
	// squash the task in any lazy scheme.
	TrueDepProb float64
	// TrueDepWords is how many such words are read when a true dependence
	// occurs (sets the dependence-set size of Table 6).
	TrueDepWords int
	// SpawnFrac is the fraction of the task executed before it spawns its
	// successor.
	SpawnFrac float64
	// GlobalReadFrac is the fraction of ordinary reads that target the
	// global read-only region (the rest read the task's own data).
	GlobalReadFrac float64
	// ThinkBase/ThinkSpread shape per-op compute time.
	ThinkBase, ThinkSpread int
}

// TLSProfiles returns the nine SPECint2000 profiles, calibrated to the
// Table 6 footprints:
//
//	app     Rd(W)  Wr(W)  Dep(W)
//	bzip2    30.2    4.9   1.0
//	crafty  109.0   23.2   2.6
//	gap      42.4   13.4   6.6
//	gzip     14.3    4.8   2.0
//	mcf      12.3    0.7   1.0
//	parser   29.6    7.1   2.3
//	twolf    41.1    6.4   1.4
//	vortex   34.7   23.5   3.6
//	vpr      43.1    8.7   1.1
func TLSProfiles() []TLSProfile {
	base := TLSProfile{
		Tasks: 200,
		// POSH hoists spawns as early as the live-ins allow.
		SpawnFrac:      0.12,
		LiveInProb:     0.55,
		GlobalReadFrac: 0.4,
		ThinkBase:      1,
		ThinkSpread:    3,
	}
	mk := func(name string, rd, wr, liveIns int, depProb float64, depWords int) TLSProfile {
		p := base
		p.Name = name
		p.ReadWords = rd
		p.WriteWords = wr
		p.LiveIns = liveIns
		p.TrueDepProb = depProb
		p.TrueDepWords = depWords
		return p
	}
	return []TLSProfile{
		mk("bzip2", 30, 5, 3, 0.11, 1),
		mk("crafty", 109, 23, 8, 0.17, 3),
		mk("gap", 42, 13, 5, 0.05, 7),
		mk("gzip", 14, 5, 2, 0.09, 2),
		mk("mcf", 12, 1, 1, 0.20, 1),
		mk("parser", 30, 7, 3, 0.13, 2),
		mk("twolf", 41, 6, 4, 0.07, 1),
		mk("vortex", 35, 24, 6, 0.06, 4),
		mk("vpr", 43, 9, 4, 0.06, 1),
	}
}

// TLSProfileByName returns the named profile.
func TLSProfileByName(name string) (TLSProfile, bool) {
	for _, p := range TLSProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return TLSProfile{}, false
}

// Address-space layout (word addresses within the 30-bit space of Table 5):
//
//	words [0, 1<<16)          global read-only data
//	task output buffers       one region per task at tlsOutBase
//
// TLS tasks access memory as contiguous *runs* at heap-scattered bases —
// the spatial structure of real SPECint data (arrays, structs, buffers).
// This structure is what keeps signature false positives low: the high
// signature chunk separates runs at different bases, and the low chunk
// separates offsets within a shared run. Uniformly random addresses would
// saturate every chunk and make any Bloom-style signature alias constantly.
const (
	tlsGlobalWords = 1 << 12 // distinct global run bases
	tlsHeapWords   = 1 << 22 // word span of the scattered heap
	tlsOutBase     = 1 << 24 // task-output runs live above the globals
	tlsRunLen      = 16      // words per contiguous write run (array-like)
)

// GenerateTLS builds the task sequence for a profile. Deterministic in
// (profile, seed).
func GenerateTLS(p TLSProfile, seed uint64) *TLSWorkload {
	r := rng.New(seed ^ hashName(p.Name))
	w := &TLSWorkload{Name: p.Name, Tasks: make([]TLSTask, 0, p.Tasks)}

	think := func() uint16 {
		t := p.ThinkBase
		if p.ThinkSpread > 0 {
			t += r.Intn(p.ThinkSpread)
		}
		return uint16(t)
	}

	// Writes of the previous task, split at its spawn point, in emission
	// (run-contiguous) order.
	var prevPre, prevPost []uint64

	for ti := 0; ti < p.Tasks; ti++ {
		nR := r.NormalishInt(p.ReadWords, p.ReadWords/4, 1)
		nW := r.NormalishInt(p.WriteWords, p.WriteWords/4, 1)

		// Write targets: contiguous runs at heap-scattered bases. Run
		// bases are salted with the task index so different tasks write
		// different objects (rare overlaps are harmless true WAW).
		writeTargets := make([]uint64, 0, nW)
		for run := 0; len(writeTargets) < nW; run++ {
			base := tlsOutBase + Scatter(ti*977+run, tlsHeapWords)
			for o := 0; o < tlsRunLen && len(writeTargets) < nW; o++ {
				writeTargets = append(writeTargets, base+uint64(o))
			}
		}

		// Reads: live-ins from the parent's pre-spawn writes first, then
		// possibly a true dependence on its post-spawn writes, then
		// ordinary reads. Live-ins are a contiguous prefix — the child
		// consumes the start of the parent's output buffer.
		var liveIns []uint64
		if r.Bool(p.LiveInProb) {
			for i := 0; i < p.LiveIns && i < len(prevPre); i++ {
				liveIns = append(liveIns, prevPre[i])
			}
		}
		var trueDeps []uint64
		if len(prevPost) > 0 && r.Bool(p.TrueDepProb) {
			n := p.TrueDepWords
			if n < 1 {
				n = 1
			}
			for i := 0; i < n && i < len(prevPost); i++ {
				trueDeps = append(trueDeps, prevPost[i])
			}
		}
		ordinary := nR - len(liveIns) - len(trueDeps)
		if ordinary < 0 {
			ordinary = 0
		}

		var ops []trace.Op
		emitRead := func(a uint64) {
			ops = append(ops, trace.Op{Kind: trace.Read, Addr: a, Think: think()})
		}
		emitWrite := func(a uint64) {
			k := trace.Write
			if r.Bool(0.35) {
				k = trace.WriteDep
			}
			ops = append(ops, trace.Op{Kind: k, Addr: a, Think: think()})
		}
		// Ordinary reads also come in contiguous bursts: global read-only
		// objects at scattered bases, or data adjacent to the task's own
		// write runs. Bursts skip already-read words so the distinct read
		// footprint matches the Table 6 calibration.
		var burst []uint64
		seenRead := map[uint64]bool{}
		ordinaryRead := func() uint64 {
			for {
				if len(burst) == 0 {
					var base uint64
					if r.Bool(p.GlobalReadFrac) {
						base = Scatter(r.Intn(tlsGlobalWords), tlsHeapWords)
					} else {
						base = writeTargets[r.Intn(len(writeTargets))] + uint64(r.Intn(2*tlsRunLen))
					}
					n := 2 + r.Intn(2*tlsRunLen-2)
					for o := 0; o < n; o++ {
						burst = append(burst, base+uint64(o))
					}
				}
				a := burst[0]
				burst = burst[1:]
				if !seenRead[a] {
					seenRead[a] = true
					return a
				}
			}
		}

		// Live-ins come right after task start ("the child often reads its
		// live-ins from the parent shortly after being spawned").
		for _, a := range liveIns {
			emitRead(a)
		}
		for _, a := range trueDeps {
			emitRead(a)
		}

		// The remaining reads and all writes are interleaved, writes
		// biased late. The spawn point lands after SpawnFrac of the
		// remaining stream.
		ri, wi := 0, 0
		for ri < ordinary || wi < nW {
			remR := ordinary - ri
			remW := nW - wi
			if remW == 0 || (remR > 0 && r.Intn(remR+remW) < remR) {
				emitRead(ordinaryRead())
				ri++
			} else {
				emitWrite(writeTargets[wi])
				wi++
			}
		}

		spawnAt := len(liveIns) + len(trueDeps) + int(p.SpawnFrac*float64(ordinary+nW))
		if spawnAt >= len(ops) {
			spawnAt = len(ops) - 1
		}
		if spawnAt < 0 {
			spawnAt = 0
		}

		// Record this task's pre/post-spawn writes for its child.
		var pre, post []uint64
		for i, op := range ops {
			if op.Kind == trace.Read {
				continue
			}
			if i <= spawnAt {
				pre = append(pre, op.Addr)
			} else {
				post = append(post, op.Addr)
			}
		}
		prevPre, prevPost = pre, post

		w.Tasks = append(w.Tasks, TLSTask{Ops: ops, SpawnIndex: spawnAt})
	}
	return w
}
