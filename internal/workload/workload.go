// Package workload generates the synthetic memory traces that stand in for
// the paper's applications.
//
// The paper evaluates TLS on SPECint2000 binaries compiled by the POSH TLS
// compiler and run on the SESC simulator, and TM on Java workloads
// (SPECjbb2000 and Java Grande) traced with Jikes RVM under Simics. Neither
// toolchain is available here, but Bulk's behaviour depends only on the
// *address streams* the threads issue: footprint sizes, read/write mix,
// cross-thread overlap structure, and (for TLS) the placement of writes
// relative to child spawns. The paper itself publishes those statistics per
// application (Tables 6 and 7), so each application is modelled as a
// profile whose generator reproduces them. Generation is deterministic
// (seeded, forked streams) so every scheme replays identical logical work.
package workload

import "bulk/internal/trace"

// WordsPerLine is the number of 4-byte words in the 64-byte cache lines of
// Table 5. All workloads use this geometry.
const WordsPerLine = 16

// TMSegment is a unit of work on a TM thread: either one transaction or a
// stretch of non-transactional code.
type TMSegment struct {
	// Txn marks the segment as a transaction.
	Txn bool
	// Ops is the memory-operation stream (word addresses).
	Ops []trace.Op
	// Sections lists the op indices at which the nested-transaction
	// sections of Figure 8 begin; Sections[0] is always 0. A flat
	// transaction has Sections == []int{0}. Empty for non-txn segments.
	Sections []int
}

// TMThread is one TM worker's program: segments executed in order.
type TMThread struct {
	Segments []TMSegment
}

// TMWorkload is a complete TM run input.
type TMWorkload struct {
	Name    string
	Threads []TMThread
}

// Transactions counts the transactional segments across all threads.
func (w *TMWorkload) Transactions() int {
	n := 0
	for _, t := range w.Threads {
		for _, s := range t.Segments {
			if s.Txn {
				n++
			}
		}
	}
	return n
}

// TLSTask is one speculative task of a sequentialized program. SpawnIndex
// is the op index after which the task spawns its successor (the paper's
// fine-grain parent/child structure: the parent produces the child's
// live-ins before the spawn point).
type TLSTask struct {
	Ops        []trace.Op
	SpawnIndex int
}

// TLSWorkload is a complete TLS run input: the tasks in sequential program
// order.
type TLSWorkload struct {
	Name  string
	Tasks []TLSTask
}

// LineOf maps a word address to its line address.
func LineOf(wordAddr uint64) uint64 { return wordAddr / WordsPerLine }

// Scatter maps a dense index to a pseudo-random position in [0, space),
// deterministically. Shared structures in real programs are heap objects
// scattered across the address space, not a dense block; signatures rely
// on that entropy reaching their high chunks. space must be a power of two.
func Scatter(i int, space uint64) uint64 {
	x := uint64(i)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x & (space - 1)
}
