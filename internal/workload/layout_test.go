package workload

import (
	"testing"

	"bulk/internal/trace"
)

// Layout invariants the signature analysis (DESIGN.md) depends on.

func TestScatterDeterministicAndBounded(t *testing.T) {
	for i := 0; i < 1000; i++ {
		a := Scatter(i, 1<<19)
		b := Scatter(i, 1<<19)
		if a != b {
			t.Fatalf("Scatter(%d) not deterministic", i)
		}
		if a >= 1<<19 {
			t.Fatalf("Scatter(%d)=%d out of range", i, a)
		}
	}
	// Distinct indices rarely collide (birthday-consistent for 1000 of
	// 2^19 — expect ~1; tolerate a few).
	seen := map[uint64]int{}
	coll := 0
	for i := 0; i < 1000; i++ {
		v := Scatter(i, 1<<19)
		if seen[v] > 0 {
			coll++
		}
		seen[v]++
	}
	if coll > 5 {
		t.Fatalf("Scatter collides too much: %d/1000", coll)
	}
}

func TestTMPrivateHeapLineLayout(t *testing.T) {
	for tid := 0; tid < 8; tid++ {
		for e := uint64(0); e < 2000; e += 7 {
			l := TMPrivateHeapLine(tid, e)
			if l>>20&1 != 1 {
				t.Fatalf("private line %#x missing bit-20 marker", l)
			}
			if l>>9&1 != 1 {
				t.Fatalf("private line %#x missing bit-9 marker", l)
			}
			if got := int(l >> 17 & 7); got != tid {
				t.Fatalf("private line %#x carries tid %d, want %d", l, got, tid)
			}
			if l >= 1<<26 {
				t.Fatalf("private line %#x exceeds the 26-bit line space", l)
			}
		}
	}
	// Distinct entropy values give distinct lines (bijective packing).
	seen := map[uint64]bool{}
	for e := uint64(0); e < 1<<12; e++ {
		l := TMPrivateHeapLine(3, e)
		if seen[l] {
			t.Fatalf("entropy packing not injective at %d", e)
		}
		seen[l] = true
	}
}

func TestTMSharedObjectLineLayout(t *testing.T) {
	for i := 0; i < 2000; i++ {
		l := TMSharedObjectLine(i)
		if l>>20&1 != 0 {
			t.Fatalf("shared line %#x has the bit-20 private marker", l)
		}
		if l>>9&1 != 0 {
			t.Fatalf("shared line %#x has the bit-9 private marker", l)
		}
		if l >= 1<<26 {
			t.Fatalf("shared line %#x exceeds the 26-bit line space", l)
		}
	}
}

func TestPrivateHeapsDisjointAcrossThreads(t *testing.T) {
	seen := map[uint64]int{}
	for tid := 0; tid < 8; tid++ {
		for e := uint64(0); e < 512; e++ {
			l := TMPrivateHeapLine(tid, e*1237)
			if prev, ok := seen[l]; ok && prev != tid {
				t.Fatalf("line %#x shared between threads %d and %d", l, prev, tid)
			}
			seen[l] = tid
		}
	}
}

func TestTLSTaskAddressesFitWordSpace(t *testing.T) {
	for _, p := range TLSProfiles() {
		sp := p
		sp.Tasks = 30
		w := GenerateTLS(sp, 3)
		for _, task := range w.Tasks {
			for _, op := range task.Ops {
				if op.Addr >= 1<<30 {
					t.Fatalf("%s: word address %#x exceeds the 30-bit space", p.Name, op.Addr)
				}
			}
		}
	}
}

func TestTMAddressesFitLineSpace(t *testing.T) {
	for _, p := range TMProfiles() {
		sp := p
		sp.TxnsPerThread = 3
		w := GenerateTM(sp, 3)
		for _, th := range w.Threads {
			for _, seg := range th.Segments {
				for _, op := range seg.Ops {
					if LineOf(op.Addr) >= 1<<26 {
						t.Fatalf("%s: line address %#x exceeds the 26-bit space",
							p.Name, LineOf(op.Addr))
					}
				}
			}
		}
	}
}

func TestNonTxnSegmentsHaveNoDepWrites(t *testing.T) {
	// The serializability oracle relies on non-transactional code being
	// free of flow-dependent writes.
	for _, p := range TMProfiles() {
		sp := p
		sp.TxnsPerThread = 3
		w := GenerateTM(sp, 9)
		for _, th := range w.Threads {
			for _, seg := range th.Segments {
				if seg.Txn {
					continue
				}
				for _, op := range seg.Ops {
					if op.Kind == trace.WriteDep {
						t.Fatalf("%s: WriteDep in non-transactional segment", p.Name)
					}
				}
			}
		}
	}
}
