package workload

import (
	"bytes"
	"testing"

	"bulk/internal/trace"
)

// Workload generation is a pure function of (profile, seed): two fresh
// generators must produce identical access streams, or schedule replay,
// the result cache keyed by (exhibit, config, seed), and every
// byte-identity claim in the tree fall apart. The comparison is over the
// canonical trace encoding, so it covers kind, address and think time of
// every op.

func encodeTM(w *TMWorkload) []byte {
	var buf bytes.Buffer
	for _, th := range w.Threads {
		for _, seg := range th.Segments {
			if seg.Txn {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
			for _, s := range seg.Sections {
				buf.WriteByte(byte(s))
				buf.WriteByte(byte(s >> 8))
			}
			buf.Write(trace.EncodeOps(seg.Ops))
		}
	}
	return buf.Bytes()
}

func encodeTLS(w *TLSWorkload) []byte {
	var buf bytes.Buffer
	for _, task := range w.Tasks {
		buf.WriteByte(byte(task.SpawnIndex))
		buf.WriteByte(byte(task.SpawnIndex >> 8))
		buf.Write(trace.EncodeOps(task.Ops))
	}
	return buf.Bytes()
}

func TestTMGenerationDeterministic(t *testing.T) {
	for _, p := range TMProfiles() {
		for _, seed := range []uint64{2006, 0, 0xdeadbeef} {
			a := encodeTM(GenerateTM(p, seed))
			b := encodeTM(GenerateTM(p, seed))
			if !bytes.Equal(a, b) {
				t.Fatalf("%s seed %d: two fresh generators disagree", p.Name, seed)
			}
		}
		// Different seeds must actually change the stream (the generator
		// is seeded, not constant).
		if bytes.Equal(encodeTM(GenerateTM(p, 1)), encodeTM(GenerateTM(p, 2))) {
			t.Fatalf("%s: seeds 1 and 2 generate identical streams", p.Name)
		}
	}
}

func TestTLSGenerationDeterministic(t *testing.T) {
	for _, p := range TLSProfiles() {
		for _, seed := range []uint64{2006, 0, 0xdeadbeef} {
			a := encodeTLS(GenerateTLS(p, seed))
			b := encodeTLS(GenerateTLS(p, seed))
			if !bytes.Equal(a, b) {
				t.Fatalf("%s seed %d: two fresh generators disagree", p.Name, seed)
			}
		}
		if bytes.Equal(encodeTLS(GenerateTLS(p, 1)), encodeTLS(GenerateTLS(p, 2))) {
			t.Fatalf("%s: seeds 1 and 2 generate identical streams", p.Name)
		}
	}
}

// FuzzWorkloadLayout drives the determinism property over arbitrary
// (seed, profile, size-override) points instead of the fixed test matrix.
func FuzzWorkloadLayout(f *testing.F) {
	f.Add(uint64(2006), uint8(0), uint8(10))
	f.Add(uint64(1), uint8(3), uint8(1))
	f.Add(uint64(0xffffffffffffffff), uint8(200), uint8(200))
	f.Fuzz(func(t *testing.T, seed uint64, pick, size uint8) {
		tmProfiles := TMProfiles()
		tp := tmProfiles[int(pick)%len(tmProfiles)]
		tp.TxnsPerThread = int(size%32) + 1
		if !bytes.Equal(encodeTM(GenerateTM(tp, seed)), encodeTM(GenerateTM(tp, seed))) {
			t.Fatalf("TM %s seed %d: nondeterministic generation", tp.Name, seed)
		}
		tlsProfiles := TLSProfiles()
		lp := tlsProfiles[int(pick)%len(tlsProfiles)]
		lp.Tasks = int(size%64) + 1
		if !bytes.Equal(encodeTLS(GenerateTLS(lp, seed)), encodeTLS(GenerateTLS(lp, seed))) {
			t.Fatalf("TLS %s seed %d: nondeterministic generation", lp.Name, seed)
		}
	})
}
