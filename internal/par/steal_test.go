package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestStealForEachCoversEveryIndex: every index in [0, n) is claimed
// exactly once, across worker counts above, at, and below n.
func TestStealForEachCoversEveryIndex(t *testing.T) {
	for _, tc := range []struct{ n, w int }{
		{0, 4}, {1, 4}, {7, 1}, {7, 3}, {64, 4}, {1000, 8}, {5, 16},
	} {
		claims := make([]atomic.Int32, tc.n)
		StealForEach(tc.n, tc.w, func(_, i int) {
			claims[i].Add(1)
		})
		for i := range claims {
			if got := claims[i].Load(); got != 1 {
				t.Errorf("n=%d w=%d: index %d claimed %d times, want 1", tc.n, tc.w, i, got)
			}
		}
	}
}

// TestStealForEachWorkerIDs: the worker id passed to fn is always a valid
// deque index, so per-worker scratch arrays indexed by it are safe.
func TestStealForEachWorkerIDs(t *testing.T) {
	const n, w = 500, 6
	var bad atomic.Int32
	StealForEach(n, w, func(worker, _ int) {
		if worker < 0 || worker >= w {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d calls saw an out-of-range worker id", bad.Load())
	}
}

// TestStealForEachBalancesSkew: a worker stalled inside fn must not strand
// the rest of its block. Index 0 blocks until every other index has run;
// without stealing, whatever remained in the stalled worker's deque could
// never be claimed and the pool would hang — completion of this test is
// the stealing property.
func TestStealForEachBalancesSkew(t *testing.T) {
	const n, w = 256, 4
	var done atomic.Int32
	rest := make(chan struct{})
	StealForEach(n, w, func(_, i int) {
		if i == 0 {
			<-rest // stall until the other n-1 indices are all claimed
			return
		}
		if done.Add(1) == n-1 {
			close(rest)
		}
	})
	if done.Load() != n-1 {
		t.Fatalf("pool returned with %d of %d non-stalled indices run", done.Load(), n-1)
	}
}

// TestStealHalfSemantics: a thief takes the ceiling half of the victim's
// remaining range, from the top, leaving the bottom with the owner.
func TestStealHalfSemantics(t *testing.T) {
	d := stealDeque{lo: 2, hi: 10} // 8 remaining
	lo, hi, ok := d.stealHalf()
	if !ok || lo != 6 || hi != 10 {
		t.Fatalf("stealHalf of [2,10) = [%d,%d) ok=%v, want [6,10) true", lo, hi, ok)
	}
	if d.lo != 2 || d.hi != 6 {
		t.Fatalf("victim left with [%d,%d), want [2,6)", d.lo, d.hi)
	}
	d = stealDeque{lo: 4, hi: 5} // single item: steal-at-least-one
	lo, hi, ok = d.stealHalf()
	if !ok || lo != 4 || hi != 5 {
		t.Fatalf("stealHalf of [4,5) = [%d,%d) ok=%v, want [4,5) true", lo, hi, ok)
	}
	if _, _, ok := d.stealHalf(); ok {
		t.Fatal("stealHalf succeeded on an empty deque")
	}
}

func TestStealWorkers(t *testing.T) {
	if got := StealWorkers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("StealWorkers(0, 100) = %d, want GOMAXPROCS", got)
	}
	if got := StealWorkers(8, 3); got != 3 {
		t.Errorf("StealWorkers(8, 3) = %d, want 3", got)
	}
	if got := StealWorkers(-1, 0); got != 1 {
		t.Errorf("StealWorkers(-1, 0) = %d, want 1", got)
	}
}
