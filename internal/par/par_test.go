package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"bulk/internal/rng"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]int, n)
		if err := ForEach(n, func(i int) error {
			hits[i]++
			return nil
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Whatever order the workers claim indices in, the reported error must
	// be the serial-first one.
	e3 := errors.New("e3")
	e7 := errors.New("e7")
	for trial := 0; trial < 20; trial++ {
		err := ForEach(16, func(i int) error {
			switch i {
			case 7:
				return e7
			case 3:
				return e3
			}
			return nil
		})
		if err != e3 {
			t.Fatalf("trial %d: got %v, want e3", trial, err)
		}
	}
}

func TestForEachRunsAllDespiteError(t *testing.T) {
	var mu sync.Mutex
	ran := 0
	err := ForEach(32, func(i int) error {
		mu.Lock()
		ran++
		mu.Unlock()
		if i%2 == 0 {
			return fmt.Errorf("i=%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "i=0" {
		t.Fatalf("got %v, want i=0", err)
	}
	if ran != 32 {
		t.Fatalf("ran %d of 32 tasks", ran)
	}
}

func TestMapLandsByIndex(t *testing.T) {
	out, err := Map(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkersBounds(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 20); w > runtime.GOMAXPROCS(0) {
		t.Errorf("Workers spawned %d > GOMAXPROCS", w)
	}
}

// TestMapDeterministicWithDerivedStreams is the engine's determinism
// contract in miniature: trials that derive their randomness from
// (seed, index) — never from a shared generator — produce the same result
// vector on every run, concurrent or not.
func TestMapDeterministicWithDerivedStreams(t *testing.T) {
	run := func() []uint64 {
		out, err := Map(64, func(i int) (uint64, error) {
			r := rng.New(2006 ^ uint64(i)*0x9e3779b97f4a7c15)
			sum := uint64(0)
			for k := 0; k < 100; k++ {
				sum += r.Uint64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d differs across runs", i)
		}
	}
}
