package par

import (
	"runtime"
	"sync"
)

// stealDeque is one worker's share of a StealForEach index space: a
// contiguous range [lo, hi) of task indices. The owner claims indices one
// at a time from the bottom (lo); a thief with an empty deque takes the top
// half of a victim's remaining range in one operation, so load imbalance
// halves with every steal instead of migrating one task at a time.
//
// A plain mutex per deque keeps the protocol obviously correct (the model
// checker's report determinism must not hinge on a subtle lock-free deque);
// the tasks this pool runs are full simulator executions, microseconds
// each, so the per-claim lock is noise. The pad keeps neighboring deques
// off one cache line so owner claims don't false-share.
type stealDeque struct {
	mu sync.Mutex
	lo int
	hi int
	_  [40]byte // pad to a cache line alongside the mutex and bounds
}

// pop claims the bottom index of the owner's range.
func (d *stealDeque) pop() (int, bool) {
	d.mu.Lock()
	if d.lo >= d.hi {
		d.mu.Unlock()
		return 0, false
	}
	i := d.lo
	d.lo++
	d.mu.Unlock()
	return i, true
}

// stealHalf takes the top half of the victim's remaining range (at least
// one index), returning the stolen range.
func (d *stealDeque) stealHalf() (lo, hi int, ok bool) {
	d.mu.Lock()
	n := d.hi - d.lo
	if n <= 0 {
		d.mu.Unlock()
		return 0, 0, false
	}
	k := (n + 1) / 2
	lo, hi = d.hi-k, d.hi
	d.hi -= k
	d.mu.Unlock()
	return lo, hi, true
}

// install replaces the deque's range with a stolen one. Only the owner
// installs, and only when its range is empty, so no claimable index is
// ever overwritten.
func (d *stealDeque) install(lo, hi int) {
	d.mu.Lock()
	d.lo, d.hi = lo, hi
	d.mu.Unlock()
}

// StealWorkers returns the worker count StealForEach resolves w to: w when
// positive, GOMAXPROCS when w <= 0, and never more than n or less than 1.
func StealWorkers(w, n int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// StealForEach runs fn(worker, i) for every i in [0, n) across w workers
// (w <= 0 means GOMAXPROCS) using per-worker deques with steal-half
// balancing, and blocks until every call has returned. The index space is
// block-partitioned across the deques up front, each worker drains its own
// block from the bottom, and a worker that runs dry probes the other
// deques round-robin and takes the top half of the first one still holding
// work. fn receives the claiming worker's id so callers can keep
// per-worker scratch state; every index is claimed exactly once, so fn may
// write index-i results without synchronization — under that contract (the
// same one ForEach imposes) the caller's reduction over the results is
// identical to a serial loop regardless of w or the steal schedule.
//
// A worker retires when its own deque and every steal probe come up empty.
// That early exit is safe: an index lives in exactly one deque at a time
// (ranges move only under the deque locks), a stolen range lands only in
// the thief's own deque, and no owner retires while its deque still holds
// work — so every index is claimed by some live worker and the WaitGroup
// holds StealForEach open until the last claimed call returns.
//
// With w == 1 the pool is bypassed entirely: fn runs inline on the calling
// goroutine, so a single-worker caller pays no synchronization at all.
func StealForEach(n, w int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w = StealWorkers(w, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	deques := make([]stealDeque, w)
	// Block partition: worker k owns [k*n/w, (k+1)*n/w), so every worker
	// starts with a contiguous run and steals only on imbalance.
	for k := 0; k < w; k++ {
		deques[k].lo = k * n / w
		deques[k].hi = (k + 1) * n / w
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			d := &deques[self]
			for {
				if i, ok := d.pop(); ok {
					fn(self, i)
					continue
				}
				stolen := false
				for off := 1; off < w; off++ {
					v := (self + off) % w
					if lo, hi, ok := deques[v].stealHalf(); ok {
						d.install(lo, hi)
						stolen = true
						break
					}
				}
				if !stolen {
					return
				}
			}
		}(k)
	}
	wg.Wait()
}
