// Package par is the deterministic bounded fan-out engine behind the
// experiment harness. Independent trials — rows of a table, bars of a
// figure, processor counts of a sweep — run concurrently on a bounded pool
// of workers, and every result lands in a slot chosen by its index, never
// by completion order. Combined with the repository's seeding discipline
// (each trial derives everything it needs from the shared seed and its own
// index, sharing no generator state with its siblings), this makes the
// concurrent schedule unobservable: printed exhibits are byte-identical to
// a serial run, which is what the golden determinism tests in
// internal/experiments assert.
//
// This is the pattern the scaling sweep proved out with hand-rolled
// goroutines, promoted to shared infrastructure:
//
//   - results land by index (no channels, no completion-order effects);
//   - errors land by index too, and the lowest-index error wins, so the
//     reported failure is the one a serial loop would have hit first;
//   - worker count is bounded by GOMAXPROCS, so a 23-configuration sweep
//     does not spawn 23 unbounded goroutines on a 2-core CI box.
//
// Shared mutable state is the caller's responsibility: the only values a
// trial may touch are its own slot and explicitly synchronized aggregators
// (bus.Meter is the sanctioned one).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the number of goroutines ForEach uses for n tasks: at
// most GOMAXPROCS, never more than n, never less than 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) across a bounded worker pool
// and blocks until all calls return. Indices are claimed from a shared
// counter, so scheduling is dynamic, but fn must write its result only
// into index-i state — under that contract the output of a ForEach-based
// computation is identical to the serial loop `for i := 0; i < n; i++`.
//
// Every fn(i) is invoked even after another index has failed (trials are
// independent; there is nothing to cancel), and the error returned is the
// one with the lowest index — the failure a serial run would report.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := Workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map is ForEach collecting one value per index: out[i] = fn(i). On error
// the whole result is discarded and the lowest-index error returned.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
